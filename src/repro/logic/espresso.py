"""ESPRESSO-style heuristic two-level minimization (EXPAND / REDUCE / IRREDUNDANT).

Two validity oracles are supported for EXPAND:

* an explicit off-set (as in ``minimize(on, dc, off)`` used by NOVA's
  symbolic minimization loop) — a raise is legal when the grown cube
  stays at distance >= 1 from every off-cube;
* no off-set — a raise is legal when the grown cube is still an
  implicant of ``on + dc``, decided by a tautology call.  This avoids
  computing a global complement, which can blow up on wide covers.

The iteration accepts a :class:`repro.perf.Budget`: when the budget
expires mid-loop the best cover found so far is returned (the result is
always a valid cover of the function — only its quality degrades).
After the first non-improving pass a LASTGASP retry runs REDUCE with
the opposite cube ordering before giving up, which recovers the ties
and near-misses the plain loop used to discard.
"""

from __future__ import annotations

import time
from typing import Optional

from repro import perf
from repro.errors import BudgetExhausted
from repro.logic import backend
from repro.logic.cover import Cover
from repro.perf.budget import Budget, ambient, tick


def _is_implicant(cube: int, on_dc: Cover) -> bool:
    return on_dc.contains_cube(cube)


def _valid_against_off(cube: int, off: Cover) -> bool:
    return not off.any_intersects(cube)


def _expand_cube(cube: int, on_dc: Cover, off: Optional[Cover],
                 off_packed=None) -> int:
    """Grow *cube* to a prime implicant by raising one position at a time.

    Raising is monotone: once a raise fails it fails for every superset,
    so a single pass over the candidate positions yields a prime.
    Positions blocked by fewer off-cubes are tried first so large
    expansions happen early.  ``off_packed`` is an optional
    backend-packed handle for the off-set, reused across the whole
    expand pass so the packing cost is paid once per cover.
    """
    fmt = on_dc.fmt if off is None else off.fmt
    stats = perf.STATS
    kernels = backend.kernels
    candidates = [b for b in range(fmt.width) if not (cube >> b) & 1]
    if off is not None:
        if off_packed is None:
            off_packed = kernels.pack(fmt, off.cubes)
        # order by how many off-cubes conflict with each single raise
        counts = kernels.intersect_counts(
            fmt, off_packed, [cube | (1 << b) for b in candidates])
        blocking = dict(zip(candidates, counts))
        candidates.sort(key=blocking.__getitem__)
    if stats is not None:
        stats.expand_cubes += 1
        stats.expand_attempts += len(candidates)
    for bit in candidates:
        tick()
        grown = cube | (1 << bit)
        if off is not None:
            ok = not kernels.any_intersects(fmt, off_packed, grown)
        else:
            ok = _is_implicant(grown, on_dc)
        if ok:
            cube = grown
            if stats is not None:
                stats.expand_raises += 1
    return cube


def expand(f: Cover, on_dc: Cover, off: Optional[Cover] = None) -> Cover:
    """Expand every cube of *f* to a prime, dropping newly covered cubes."""
    fmt = f.fmt
    kernels = backend.kernels
    # expand small cubes first: they benefit the most and their primes
    # tend to swallow neighbouring cubes
    counts = kernels.minterm_counts(fmt, f.cubes)
    order = sorted(range(len(f.cubes)), key=counts.__getitem__)
    off_packed = kernels.pack(fmt, off.cubes) if off is not None else None
    covered = [False] * len(f.cubes)
    out = Cover(fmt)
    for i in order:
        tick()
        if covered[i]:
            continue
        prime = _expand_cube(f.cubes[i], on_dc, off, off_packed)
        out.cubes.append(prime)
        swallowed = kernels.contained_mask(fmt, f.cubes, prime)
        for j in order:
            if swallowed[j]:
                covered[j] = True
    return out.single_cube_containment()


def irredundant(f: Cover, dc: Optional[Cover] = None) -> Cover:
    """Greedy irredundant cover: drop cubes covered by the rest of f + dc."""
    fmt = f.fmt
    counts = backend.kernels.minterm_counts(fmt, f.cubes)
    # try dropping small cubes first
    order = sorted(range(len(f.cubes)), key=counts.__getitem__)
    kept = [f.cubes[i] for i in order]
    i = 0
    while i < len(kept):
        tick()
        c = kept[i]
        rest = Cover(fmt)
        rest.cubes = kept[:i] + kept[i + 1:]
        if dc is not None:
            rest.cubes = rest.cubes + list(dc.cubes)
        if rest.contains_cube(c):
            kept.pop(i)
        else:
            i += 1
    out = Cover(fmt)
    out.cubes = kept
    return out


def reduce_cover(
    f: Cover, dc: Optional[Cover] = None, largest_first: bool = True
) -> Cover:
    """Replace each cube by its maximal reduction (SCCC rule).

    ``c_new = c  ∩  supercube(complement((F - c + D) cofactored by c))``.
    Cubes are processed in place so later reductions see earlier ones,
    keeping the cover equivalent to the original function at all times.
    ``largest_first=False`` reverses the processing order — the
    LASTGASP retry uses it to escape the ordering-dependent local
    minimum the default order settles into.
    """
    fmt = f.fmt
    # reduce large cubes first, as espresso does (LASTGASP: smallest first)
    counts = backend.kernels.minterm_counts(fmt, f.cubes)
    order = sorted(range(len(f.cubes)), key=counts.__getitem__,
                   reverse=largest_first)
    cubes = [f.cubes[i] for i in order]
    for i in range(len(cubes)):
        tick()
        c = cubes[i]
        rest = Cover(fmt)
        rest.cubes = cubes[:i] + cubes[i + 1:]
        if dc is not None:
            rest.cubes = rest.cubes + list(dc.cubes)
        comp = rest.cofactor(c).complement()
        if not comp.cubes:
            cubes[i] = 0  # cube entirely covered by the rest: drop
            continue
        sccc = 0
        for k in comp.cubes:
            sccc |= k
        cubes[i] = c & sccc
    out = Cover(fmt)
    for c in cubes:
        if c and not fmt.is_empty(c):
            out.cubes.append(c)
    return out


def _one_pass(
    best: Cover,
    dc: Cover,
    on_dc: Cover,
    off: Optional[Cover],
    largest_first: bool = True,
) -> Cover:
    """One REDUCE / EXPAND / IRREDUNDANT round, individually timed."""
    with perf.timer("reduce"):
        f = reduce_cover(best, dc, largest_first=largest_first)
    with perf.timer("expand"):
        f = expand(f, on_dc, off)
    with perf.timer("irredundant"):
        f = irredundant(f, dc)
    return f


def espresso(
    on: Cover,
    dc: Optional[Cover] = None,
    off: Optional[Cover] = None,
    max_iter: int = 10,
    effort: str = "full",
    budget: Optional[Budget] = None,
) -> Cover:
    """Heuristically minimize ``on`` against optional ``dc`` / explicit ``off``.

    Returns a prime, (greedily) irredundant cover of the function whose
    on-set is covered by the result plus ``dc`` and which never
    intersects ``off``.  ``effort='low'`` runs a single
    expand+irredundant pass (used for the very largest benchmark
    machines where the reduce/expand iteration is too slow in pure
    Python).  A *budget* bounds the iteration: when it expires the best
    cover found so far is returned immediately.
    """
    fmt = on.fmt
    stats = perf.STATS
    t0 = time.perf_counter() if stats is not None else 0.0
    if dc is None:
        dc = Cover(fmt)
    on_dc = on + dc
    f = on.single_cube_containment()
    with perf.timer("expand"):
        f = expand(f, on_dc, off)
    with perf.timer("irredundant"):
        f = irredundant(f, dc)
    if effort == "low":
        if stats is not None:
            stats.add_time("espresso", time.perf_counter() - t0)
        return f
    best = f
    best_cost = f.cost()
    # the improvement loop runs with the budget's deadline installed as
    # the ambient tick target, so the per-cube ticks inside the passes
    # can interrupt a runaway REDUCE/EXPAND; the incumbent `best` is a
    # complete valid cover at all times, so a mid-pass interruption just
    # means returning it early
    try:
        with ambient(budget):
            for _ in range(max_iter):
                if budget is not None and budget.expired():
                    break
                f = _one_pass(best, dc, on_dc, off)
                if stats is not None:
                    stats.espresso_passes += 1
                cost = f.cost()
                if cost < best_cost:
                    best, best_cost = f, cost
                    continue
                if cost == best_cost:
                    # a tie is as good as the incumbent and is the
                    # fixpoint the next pass would start from — keep it
                    # instead of discarding
                    best = f
                if budget is not None and budget.expired():
                    break
                # LASTGASP: one retry with the reversed reduce ordering
                # before giving up; accept only a strict improvement
                if stats is not None:
                    stats.lastgasp_attempts += 1
                g = _one_pass(best, dc, on_dc, off, largest_first=False)
                if stats is not None:
                    stats.espresso_passes += 1
                g_cost = g.cost()
                if g_cost < best_cost:
                    if stats is not None:
                        stats.lastgasp_wins += 1
                    best, best_cost = g, g_cost
                    continue
                break
    except BudgetExhausted:
        pass  # deadline mid-pass: degrade to the incumbent cover
    if stats is not None:
        stats.add_time("espresso", time.perf_counter() - t0)
    return best


def minimize(on: Cover, dc: Cover, off: Cover, effort: str = "full",
             budget: Optional[Budget] = None) -> Cover:
    """NOVA-style ``minimize(on, dc, off)`` with an explicit off-set."""
    return espresso(on, dc=dc, off=off, effort=effort, budget=budget)
