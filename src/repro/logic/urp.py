"""Unate-recursive paradigm: tautology and complement of MV covers.

Both procedures follow the classic ESPRESSO scheme: fast special cases,
unate reductions, then Shannon expansion on the *most binate* variable,
recursing on the cofactor against each part of that variable.  Because
the parts of a variable partition its value set, the per-part recursion
is exact for multiple-valued variables as well as binary ones.

Two reductions avoid Shannon splits altogether (set
:data:`UNATE_REDUCTION` to ``False`` to measure their effect, see
``benchmarks/bench_substrate.py``):

* **tautology** — if some value ``j`` of a variable appears only in
  cubes that are *full* in that variable, the cofactor against
  ``x=j`` is the weakest branch: the cover is a tautology iff that
  single cofactor is.  For a binary unate variable this is the
  textbook rule "cofactor against the missing phase"; a fully unate
  cover resolves with no splits at all (it is a tautology iff it
  contains the universe cube).
* **complement** — values of a variable contained in *no* cube
  complement wholesale (the slab is entirely outside the cover), and
  the rest of the complement is computed with those values raised,
  which makes the variable full (or unate) for the recursion below.

Perf counters (:mod:`repro.perf`) meter calls, recursion count, depth
and avoided splits; they cost one attribute load when disabled.
"""

from __future__ import annotations

from typing import List, Optional

from repro import perf
from repro.logic import backend
from repro.logic.backend import VarProfile
from repro.logic.cover import Cover
from repro.logic.cube import Format
from repro.perf.budget import tick

# kill-switch for the unate reductions, used by the substrate benches to
# measure how many URP recursions the reductions save
UNATE_REDUCTION = True


def _profile_split_var(fmt: Format, profile: VarProfile) -> Optional[int]:
    """Most-binate split variable from a precomputed variable profile.

    A variable is binate in the cover when it appears with at least two
    different non-full fields; among binate variables the one non-full
    in the most cubes is chosen (ties prefer more parts, giving flatter
    recursion trees).  When no variable is binate — a unate cover — the
    variable non-full in the most cubes is returned as a fallback so
    the recursion still makes progress.  Returns ``None`` only when
    every cube is full in every variable.
    """
    best_var = None
    best_key = None
    fallback_var = None
    fallback_count = 0
    for v, (count, binate, _union) in enumerate(profile):
        if count == 0:
            continue
        if count > fallback_count or (
            count == fallback_count and fallback_var is not None
            and fmt.parts[v] > fmt.parts[fallback_var]
        ):
            fallback_var = v
            fallback_count = count
        if binate:
            key = (count, fmt.parts[v])
            if best_key is None or key > best_key:
                best_var = v
                best_key = key
    if best_var is not None:
        return best_var
    return fallback_var


def _select_split_var(cover: Cover) -> Optional[int]:
    """Pick the most *binate* variable (ESPRESSO's selection rule)."""
    profile = backend.kernels.var_profile(cover.fmt, cover.cubes)
    return _profile_split_var(cover.fmt, profile)


def _profile_reduction_cube(fmt: Format, profile: VarProfile) -> Optional[int]:
    """Cube to cofactor against for the tautology unate reduction.

    For each variable, values appearing only in cubes full in that
    variable give a weakest branch; all such branches combine into one
    cofactor (subset relations between branch cube-sets survive the
    cube-dropping each reduction performs).  Returns ``None`` when no
    variable reduces.
    """
    universe = fmt.universe
    lit = universe
    for v, m in enumerate(fmt.masks):
        union_nonfull = profile[v][2]
        if union_nonfull and union_nonfull != m:
            missing = m & ~union_nonfull
            weakest = missing & -missing  # lowest missing value
            lit &= (universe & ~m) | weakest
    return None if lit == universe else lit


def _unate_reduction_cube(cover: Cover) -> Optional[int]:
    """Tautology unate-reduction cofactor cube (see _profile_reduction_cube)."""
    profile = backend.kernels.var_profile(cover.fmt, cover.cubes)
    return _profile_reduction_cube(cover.fmt, profile)


def tautology(cover: Cover) -> bool:
    """True when the cover covers the whole Boolean/MV space."""
    stats = perf.STATS
    if stats is not None:
        stats.tautology_calls += 1
    return _tautology_rec(cover, 1, stats)


def _tautology_rec(cover: Cover, depth: int, stats) -> bool:
    if stats is not None:
        stats.urp_recursions += 1
        if depth > stats.urp_max_depth:
            stats.urp_max_depth = depth
    fmt = cover.fmt
    cubes = cover.cubes
    if not cubes:
        return False
    universe = fmt.universe
    # universal-cube check
    for c in cubes:
        if c == universe:
            return True
    # column check: some value of some variable appearing in no cube
    # cannot be covered
    union = 0
    for c in cubes:
        union |= c
    if union != universe:
        return False
    # one batched per-variable profile serves the unate reduction and
    # the split-variable selection
    profile = backend.kernels.var_profile(fmt, cubes)
    if UNATE_REDUCTION:
        lit = _profile_reduction_cube(fmt, profile)
        if lit is not None:
            if stats is not None:
                stats.unate_reductions += 1
            return _tautology_rec(cover.cofactor(lit), depth + 1, stats)
    var = _profile_split_var(fmt, profile)
    if var is None:
        return False  # non-universe cubes only; unreachable after checks
    for part in range(fmt.parts[var]):
        tick()
        lit = fmt.literal(var, (part,))
        if not _tautology_rec(cover.cofactor(lit), depth + 1, stats):
            return False
    return True


def complement(cover: Cover) -> Cover:
    """Complement of a cover (disjoint by construction, then compacted)."""
    stats = perf.STATS
    if stats is not None:
        stats.complement_calls += 1
    result = _complement_rec(cover, 1, stats)
    return result.single_cube_containment()


def _complement_single_cube(fmt, cube: int) -> List[int]:
    """De Morgan complement of one cube: one cube per non-full variable."""
    out = []
    for v, m in enumerate(fmt.masks):
        if cube & m != m:
            out.append((fmt.universe & ~m) | (m & ~cube))
    return out


def _complement_rec(cover: Cover, depth: int = 1, stats=None) -> Cover:
    if stats is not None:
        stats.urp_recursions += 1
        if depth > stats.urp_max_depth:
            stats.urp_max_depth = depth
    fmt = cover.fmt
    cubes = cover.cubes
    out = Cover(fmt)
    if not cubes:
        out.cubes.append(fmt.universe)
        return out
    universe = fmt.universe
    for c in cubes:
        if c == universe:
            return out  # empty complement
    if len(cubes) == 1:
        out.cubes = _complement_single_cube(fmt, cubes[0])
        return out
    # one batched profile serves the missing-value factoring and the
    # split-variable selection below
    profile = backend.kernels.var_profile(fmt, cubes)
    if UNATE_REDUCTION:
        # missing-value factoring: values of a variable inside no cube
        # complement wholesale; raising them in every cube removes the
        # variable's "holes" without changing the complement inside the
        # remaining slab, so the recursion sees fuller variables.  The
        # full union over all cubes equals the mask as soon as one cube
        # is full in the variable, so it reduces to the profile's
        # non-full union exactly when every cube is non-full there.
        n = len(cubes)
        raised = 0
        restrict = universe
        for v, m in enumerate(fmt.masks):
            count, _binate, union = profile[v]
            if count == n and union != m:
                missing = m & ~union
                out.cubes.append((universe & ~m) | missing)
                raised |= missing
                restrict &= (universe & ~m) | union
        if raised:
            if stats is not None:
                stats.unate_reductions += 1
            lifted = Cover(fmt)
            lifted.cubes = [c | raised for c in cubes]
            sub = _complement_rec(lifted, depth + 1, stats)
            for c in sub.cubes:
                r = c & restrict
                if not fmt.is_empty(r):
                    out.cubes.append(r)
            return out
    var = _profile_split_var(fmt, profile)
    if var is None:
        return out  # all cubes universe; handled above
    for part in range(fmt.parts[var]):
        tick()
        lit = fmt.literal(var, (part,))
        sub = _complement_rec(cover.cofactor(lit), depth + 1, stats)
        for c in sub.cubes:
            r = c & lit
            if not fmt.is_empty(r):
                out.cubes.append(r)
    return out
