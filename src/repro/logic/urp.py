"""Unate-recursive paradigm: tautology and complement of MV covers.

Both procedures follow the classic ESPRESSO scheme: fast special cases,
then Shannon expansion on the *most binate* variable, recursing on the
cofactor against each part of that variable.  Because the parts of a
variable partition its value set, the per-part recursion is exact for
multiple-valued variables as well as binary ones.
"""

from __future__ import annotations

from typing import List, Optional

from repro.logic.cover import Cover


def _select_split_var(cover: Cover) -> Optional[int]:
    """Pick the variable appearing non-full in the most cubes.

    Returns ``None`` when every cube is full in every variable (which
    means each cube is the universe — callers handle that earlier).
    """
    fmt = cover.fmt
    best_var = None
    best_count = 0
    for v, m in enumerate(fmt.masks):
        count = 0
        for c in cover.cubes:
            if c & m != m:
                count += 1
        if count > best_count or (
            count == best_count and best_var is not None
            and count and fmt.parts[v] > fmt.parts[best_var]
        ):
            best_var = v
            best_count = count
    if best_count == 0:
        return None
    return best_var


def tautology(cover: Cover) -> bool:
    """True when the cover covers the whole Boolean/MV space."""
    fmt = cover.fmt
    cubes = cover.cubes
    if not cubes:
        return False
    universe = fmt.universe
    # universal-cube check
    for c in cubes:
        if c == universe:
            return True
    # column check: some value of some variable appearing in no cube
    # cannot be covered
    union = 0
    for c in cubes:
        union |= c
    if union != universe:
        return False
    var = _select_split_var(cover)
    if var is None:
        return False  # non-universe cubes only; unreachable after checks
    for part in range(fmt.parts[var]):
        lit = fmt.literal(var, (part,))
        if not tautology(cover.cofactor(lit)):
            return False
    return True


def complement(cover: Cover) -> Cover:
    """Complement of a cover (disjoint by construction, then compacted)."""
    result = _complement_rec(cover)
    return result.single_cube_containment()


def _complement_single_cube(fmt, cube: int) -> List[int]:
    """De Morgan complement of one cube: one cube per non-full variable."""
    out = []
    for v, m in enumerate(fmt.masks):
        if cube & m != m:
            out.append((fmt.universe & ~m) | (m & ~cube))
    return out


def _complement_rec(cover: Cover) -> Cover:
    fmt = cover.fmt
    cubes = cover.cubes
    out = Cover(fmt)
    if not cubes:
        out.cubes.append(fmt.universe)
        return out
    universe = fmt.universe
    for c in cubes:
        if c == universe:
            return out  # empty complement
    if len(cubes) == 1:
        out.cubes = _complement_single_cube(fmt, cubes[0])
        return out
    # column check shortcut: uncovered values of a variable complement
    # directly, which also guarantees progress for the recursion below
    var = _select_split_var(cover)
    if var is None:
        return out  # all cubes universe; handled above
    for part in range(fmt.parts[var]):
        lit = fmt.literal(var, (part,))
        sub = _complement_rec(cover.cofactor(lit))
        for c in sub.cubes:
            r = c & lit
            if not fmt.is_empty(r):
                out.cubes.append(r)
    return out
