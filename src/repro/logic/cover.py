"""Covers: sets of positional cubes sharing one :class:`~repro.logic.cube.Format`."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import perf
from repro.logic import backend
from repro.logic.cube import Format

# Bounded memo for contains_cube (see Cover.contains_cube).  The key is
# (format parts, cube tuple, queried cube): building it is O(n) but a
# hit saves a full URP tautology run, which dominates irredundant and
# the tautology-oracle expand.  The cache is flushed wholesale when it
# fills — the workloads are bursts of queries against a handful of
# covers, so LRU bookkeeping buys nothing over a flush.
CONTAINS_MEMO = True
_CONTAINS_MEMO_MAX = 8192
_contains_memo: Dict[Tuple, bool] = {}
_memo_scope_depth = 0


def clear_contains_memo() -> None:
    """Drop all memoized containment answers (mostly for benchmarks)."""
    _contains_memo.clear()


@contextmanager
def contains_memo_scope() -> Iterator[None]:
    """Scope the containment memo to one unit of work.

    The memo is module-level state: left alone, answers cached during
    one ``encode_fsm`` run would leak into the next, making a run's
    observable behaviour (perf counters, memo pressure, flush timing)
    depend on what happened to run before it in the same process.
    ``encode_fsm`` wraps each encode in this scope, which clears the
    memo on entry and exit of the *outermost* scope only — nested
    scopes (fallback chains re-entering the encoder) keep the intra-run
    hit rate intact.
    """
    global _memo_scope_depth
    _memo_scope_depth += 1
    if _memo_scope_depth == 1:
        _contains_memo.clear()
    try:
        yield
    finally:
        _memo_scope_depth -= 1
        if _memo_scope_depth == 0:
            _contains_memo.clear()


class Cover:
    """An ordered list of non-empty cubes over a common format.

    The class is deliberately lightweight: cubes are plain integers and
    most algorithms work on ``cover.cubes`` directly.  Methods that
    return covers always return new objects; nothing mutates in place
    except :meth:`append`.
    """

    __slots__ = ("fmt", "cubes")

    def __init__(self, fmt: Format, cubes: Optional[Iterable[int]] = None):
        self.fmt = fmt
        self.cubes: List[int] = []
        if cubes is not None:
            for c in cubes:
                self.append(c)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def append(self, cube: int) -> None:
        """Append *cube*, silently dropping empty cubes."""
        if not self.fmt.is_empty(cube):
            self.cubes.append(cube)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cubes)

    def __getitem__(self, idx: int) -> int:
        return self.cubes[idx]

    def copy(self) -> "Cover":
        out = Cover(self.fmt)
        out.cubes = list(self.cubes)
        return out

    def __add__(self, other: "Cover") -> "Cover":
        if other.fmt != self.fmt:
            raise ValueError("cannot concatenate covers with different formats")
        out = self.copy()
        out.cubes.extend(other.cubes)
        return out

    def __repr__(self) -> str:
        return f"Cover({len(self.cubes)} cubes, {self.fmt!r})"

    def to_strings(self) -> List[str]:
        return [self.fmt.cube_to_str(c) for c in self.cubes]

    # ------------------------------------------------------------------
    # cover algebra
    # ------------------------------------------------------------------
    def cofactor(self, against: int) -> "Cover":
        """Cofactor every cube against *against*, dropping empty results."""
        stats = perf.STATS
        if stats is not None:
            stats.cofactor_calls += 1
        out = Cover(self.fmt)
        out.cubes = backend.kernels.cofactor(self.fmt, self.cubes, against)
        return out

    def intersect_cube(self, cube: int) -> "Cover":
        """Intersect every cube with *cube*, dropping empty results."""
        out = Cover(self.fmt)
        out.cubes = backend.kernels.intersect_cube(self.fmt, self.cubes, cube)
        return out

    def contain_any(self, cube: int) -> bool:
        """True when some *single* cube of the cover contains *cube*.

        Cheaper than :meth:`contains_cube` (no tautology call) and the
        common fast path of the iterated-consensus containment filter.
        """
        return backend.kernels.contain_any(self.fmt, self.cubes, cube)

    def any_intersects(self, cube: int) -> bool:
        """True when *cube* shares a minterm with some cube of the cover."""
        return backend.kernels.any_intersects(self.fmt, self.cubes, cube)

    def single_cube_containment(self) -> "Cover":
        """Drop every cube contained in another single cube of the cover.

        Duplicates collapse first, then candidates are visited in
        decreasing minterm-count order (containers first) with the cube
        value as a deterministic tie-break: equal-count cubes cannot
        contain one another, so the tie order never changes *which*
        cubes survive, but pinning it keeps the output order — and
        everything downstream of it — independent of set iteration
        order across processes and hash seeds.
        """
        stats = perf.STATS
        if stats is not None:
            stats.scc_calls += 1
        n_in = len(self.cubes)
        if n_in <= 1:
            return self.copy()
        kept = backend.kernels.single_cube_containment(self.fmt, self.cubes)
        if stats is not None:
            stats.scc_dropped += n_in - len(kept)
        out = Cover(self.fmt)
        out.cubes = kept
        return out

    def contains_cube(self, cube: int) -> bool:
        """True when the cover covers every minterm of *cube*.

        Answers are memoized in a bounded module-level cache: the
        reduce/expand/irredundant loop and the tautology-oracle expand
        re-ask the same (cover, cube) questions many times per pass.
        """
        from repro.logic.urp import tautology

        stats = perf.STATS
        if stats is not None:
            stats.contains_calls += 1
        if not CONTAINS_MEMO:
            return tautology(self.cofactor(cube))
        key = (self.fmt.parts, tuple(self.cubes), cube)
        hit = _contains_memo.get(key)
        if hit is not None:
            if stats is not None:
                stats.contains_memo_hits += 1
            return hit
        result = tautology(self.cofactor(cube))
        if len(_contains_memo) >= _CONTAINS_MEMO_MAX:
            _contains_memo.clear()
        _contains_memo[key] = result
        return result

    def covers(self, other: "Cover") -> bool:
        """True when this cover covers every cube of *other*."""
        return all(self.contains_cube(c) for c in other.cubes)

    def complement(self) -> "Cover":
        """Complement of the cover (unate-recursive paradigm)."""
        from repro.logic.urp import complement

        return complement(self)

    def is_tautology(self) -> bool:
        from repro.logic.urp import tautology

        return tautology(self)

    # ------------------------------------------------------------------
    # cost measures
    # ------------------------------------------------------------------
    def literal_cost(self) -> int:
        """Espresso-convention literal count: lower is a better cover.

        Input planes (every variable but the last) charge one literal
        per *excluded* value — a binary ``0``/``1`` costs 1, don't-care
        costs 0.  The last variable is the multi-output plane
        (ESPRESSO-MV convention, see :mod:`repro.logic.cube`): there a
        cube is charged one literal per *asserted* output, so a cube
        driving 2 of 3 outputs costs 2, not the 1 the zero-count would
        give.
        """
        fmt = self.fmt
        out_var = fmt.num_vars - 1
        out_mask = fmt.masks[out_var]
        cost = 0
        for c in self.cubes:
            inputs = c & ~out_mask
            # input literals: zeros in the input planes
            cost += (fmt.universe & ~out_mask & ~inputs).bit_count()
            # output literals: asserted outputs in the output plane
            cost += (c & out_mask).bit_count()
        return cost

    def cost(self) -> tuple:
        """(#cubes, literal cost) — the espresso improvement criterion."""
        return (len(self.cubes), self.literal_cost())


def from_strings(fmt: Format, rows: Sequence[str]) -> Cover:
    """Build a cover from :meth:`Format.cube_to_str`-style rows."""
    return Cover(fmt, (fmt.cube_from_str(r) for r in rows))
