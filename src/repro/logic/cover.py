"""Covers: sets of positional cubes sharing one :class:`~repro.logic.cube.Format`."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

from repro.logic.cube import Format


class Cover:
    """An ordered list of non-empty cubes over a common format.

    The class is deliberately lightweight: cubes are plain integers and
    most algorithms work on ``cover.cubes`` directly.  Methods that
    return covers always return new objects; nothing mutates in place
    except :meth:`append`.
    """

    __slots__ = ("fmt", "cubes")

    def __init__(self, fmt: Format, cubes: Optional[Iterable[int]] = None):
        self.fmt = fmt
        self.cubes: List[int] = []
        if cubes is not None:
            for c in cubes:
                self.append(c)

    # ------------------------------------------------------------------
    # basic container behaviour
    # ------------------------------------------------------------------
    def append(self, cube: int) -> None:
        """Append *cube*, silently dropping empty cubes."""
        if not self.fmt.is_empty(cube):
            self.cubes.append(cube)

    def __len__(self) -> int:
        return len(self.cubes)

    def __iter__(self) -> Iterator[int]:
        return iter(self.cubes)

    def __getitem__(self, idx: int) -> int:
        return self.cubes[idx]

    def copy(self) -> "Cover":
        out = Cover(self.fmt)
        out.cubes = list(self.cubes)
        return out

    def __add__(self, other: "Cover") -> "Cover":
        if other.fmt != self.fmt:
            raise ValueError("cannot concatenate covers with different formats")
        out = self.copy()
        out.cubes.extend(other.cubes)
        return out

    def __repr__(self) -> str:
        return f"Cover({len(self.cubes)} cubes, {self.fmt!r})"

    def to_strings(self) -> List[str]:
        return [self.fmt.cube_to_str(c) for c in self.cubes]

    # ------------------------------------------------------------------
    # cover algebra
    # ------------------------------------------------------------------
    def cofactor(self, against: int) -> "Cover":
        """Cofactor every cube against *against*, dropping empty results."""
        fmt = self.fmt
        out = Cover(fmt)
        raise_mask = fmt.universe & ~against
        for c in self.cubes:
            if fmt.intersects(c, against):
                out.cubes.append(c | raise_mask)
        return out

    def intersect_cube(self, cube: int) -> "Cover":
        """Intersect every cube with *cube*, dropping empty results."""
        fmt = self.fmt
        out = Cover(fmt)
        for c in self.cubes:
            r = c & cube
            if not fmt.is_empty(r):
                out.cubes.append(r)
        return out

    def single_cube_containment(self) -> "Cover":
        """Drop every cube contained in another single cube of the cover."""
        # sort by decreasing minterm count so containers come first
        fmt = self.fmt
        order = sorted(self.cubes, key=fmt.minterm_count, reverse=True)
        kept: List[int] = []
        for c in order:
            if any(c & ~k == 0 for k in kept):
                continue
            kept.append(c)
        out = Cover(fmt)
        out.cubes = kept
        return out

    def contains_cube(self, cube: int) -> bool:
        """True when the cover covers every minterm of *cube*."""
        from repro.logic.urp import tautology

        return tautology(self.cofactor(cube))

    def covers(self, other: "Cover") -> bool:
        """True when this cover covers every cube of *other*."""
        return all(self.contains_cube(c) for c in other.cubes)

    def complement(self) -> "Cover":
        """Complement of the cover (unate-recursive paradigm)."""
        from repro.logic.urp import complement

        return complement(self)

    def is_tautology(self) -> bool:
        from repro.logic.urp import tautology

        return tautology(self)

    # ------------------------------------------------------------------
    # cost measures
    # ------------------------------------------------------------------
    def literal_cost(self) -> int:
        """Total number of *care* positions: lower is a better cover."""
        fmt = self.fmt
        cost = 0
        for c in self.cubes:
            for v in range(fmt.num_vars):
                f = fmt.field(c, v)
                full = (1 << fmt.parts[v]) - 1
                if f != full:
                    cost += bin(full & ~f).count("1")
        return cost

    def cost(self) -> tuple:
        """(#cubes, literal cost) — the espresso improvement criterion."""
        return (len(self.cubes), self.literal_cost())


def from_strings(fmt: Format, rows: Sequence[str]) -> Cover:
    """Build a cover from :meth:`Format.cube_to_str`-style rows."""
    return Cover(fmt, (fmt.cube_from_str(r) for r in rows))
