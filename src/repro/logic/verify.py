"""Independent correctness checks for minimization results.

These are used by the test-suite and by the benchmark harness to make
sure the pure-Python espresso substrate never returns a wrong cover —
every benchmark number in EXPERIMENTS.md is backed by these checks.
"""

from __future__ import annotations

from typing import Optional

from repro.logic.cover import Cover


def covers_equivalent(a: Cover, b: Cover) -> bool:
    """True when the two covers denote the same function (mutual covering)."""
    return a.covers(b) and b.covers(a)


def verify_minimization(
    result: Cover,
    on: Cover,
    dc: Optional[Cover] = None,
    off: Optional[Cover] = None,
) -> bool:
    """Check the espresso contract.

    * every on-set minterm is covered: ``on ⊆ result ∪ dc``;
    * the result asserts nothing false: with an explicit *off*,
      ``result ∩ off = ∅``; otherwise ``result ⊆ on ∪ dc``.
    """
    fmt = on.fmt
    upper = result.copy()
    if dc is not None:
        upper = upper + dc
    if not upper.covers(on):
        return False
    if off is not None:
        for c in result.cubes:
            for o in off.cubes:
                if fmt.intersects(c, o):
                    return False
        return True
    on_dc = on.copy()
    if dc is not None:
        on_dc = on_dc + dc
    return on_dc.covers(result)
