"""Positional-cube notation over mixed binary / multiple-valued variables.

A *format* describes the layout of a cube: an ordered list of variables,
each with a number of *parts* (positions).  A binary input variable has
two parts (``01`` = value 0, ``10`` = value 1, ``11`` = don't care); a
multiple-valued variable with ``n`` values has ``n`` parts; the
multi-output part of a function is treated as one more multiple-valued
variable with one part per output, following the classic ESPRESSO-MV
convention.

A cube is a plain Python ``int``: the concatenation of all part fields,
variable 0 in the least significant bits.  All cube algebra (intersection,
containment, cofactor, distance, supercube) is integer bitmask
arithmetic, which keeps the pure-Python minimizer fast enough for the
benchmark machines of the NOVA paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple


class Format:
    """Bit layout of positional cubes for a fixed list of variables.

    Parameters
    ----------
    parts:
        Number of parts of each variable, in order.  Each entry must be
        at least 1 (an output variable may have a single part).
    """

    __slots__ = (
        "parts",
        "num_vars",
        "offsets",
        "masks",
        "width",
        "universe",
        "_bit_var",
        "_kcache",
    )

    def __init__(self, parts: Sequence[int]):
        if not parts:
            raise ValueError("a format needs at least one variable")
        for p in parts:
            if p < 1:
                raise ValueError(f"variable must have >= 1 part, got {p}")
        self.parts: Tuple[int, ...] = tuple(parts)
        self.num_vars = len(self.parts)
        offsets: List[int] = []
        masks: List[int] = []
        off = 0
        for p in self.parts:
            offsets.append(off)
            masks.append(((1 << p) - 1) << off)
            off += p
        self.offsets: Tuple[int, ...] = tuple(offsets)
        self.masks: Tuple[int, ...] = tuple(masks)
        self.width = off
        self.universe = (1 << off) - 1
        # map from absolute bit index to its variable, for expand ordering
        bit_var = []
        for v, p in enumerate(self.parts):
            bit_var.extend([v] * p)
        self._bit_var: Tuple[int, ...] = tuple(bit_var)
        # packing tables lazily attached by repro.logic.backend
        self._kcache: object = None

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def cube_from_fields(self, fields: Sequence[int]) -> int:
        """Build a cube from one integer field per variable."""
        if len(fields) != self.num_vars:
            raise ValueError("wrong number of fields")
        cube = 0
        for v, f in enumerate(fields):
            if f < 0 or f >= (1 << self.parts[v]):
                raise ValueError(f"field {f:#x} out of range for variable {v}")
            cube |= f << self.offsets[v]
        return cube

    def _check_var(self, var: int) -> int:
        """Validate a variable index; negatives never alias from the end.

        Python-style negative indexing would silently address the wrong
        part field in the mask arithmetic of :meth:`with_field` (the
        masks are positional, not sliceable), so any out-of-range index
        — negative or too large — is rejected with the variable named.
        """
        if not 0 <= var < self.num_vars:
            raise ValueError(
                f"variable index {var} out of range for format with "
                f"{self.num_vars} variables (parts={self.parts})")
        return var

    def literal(self, var: int, values: Iterable[int]) -> int:
        """Cube that is full everywhere except *var*, restricted to *values*."""
        self._check_var(var)
        field = 0
        for val in values:
            if val < 0 or val >= self.parts[var]:
                raise ValueError(f"value {val} out of range for variable {var}")
            field |= 1 << val
        return (self.universe & ~self.masks[var]) | (field << self.offsets[var])

    def field(self, cube: int, var: int) -> int:
        """Extract the part field of *var* from *cube* (right-aligned)."""
        self._check_var(var)
        return (cube & self.masks[var]) >> self.offsets[var]

    def with_field(self, cube: int, var: int, field: int) -> int:
        """Return *cube* with the field of *var* replaced."""
        self._check_var(var)
        return (cube & ~self.masks[var]) | (field << self.offsets[var])

    def var_of_bit(self, bit: int) -> int:
        """Variable that absolute bit position *bit* belongs to."""
        return self._bit_var[bit]

    # ------------------------------------------------------------------
    # cube algebra
    # ------------------------------------------------------------------
    def is_empty(self, cube: int) -> bool:
        """A cube is empty when some variable's field is all zero."""
        for m in self.masks:
            if not cube & m:
                return True
        return False

    def intersect(self, a: int, b: int) -> int:
        """Intersection of two cubes; may be empty (check ``is_empty``)."""
        return a & b

    def intersects(self, a: int, b: int) -> bool:
        """True when the two cubes share at least one minterm."""
        c = a & b
        for m in self.masks:
            if not c & m:
                return False
        return True

    def contains(self, outer: int, inner: int) -> bool:
        """True when cube *outer* contains cube *inner* (single cube)."""
        return inner & ~outer == 0

    def distance(self, a: int, b: int) -> int:
        """Number of variables where the two cubes have empty intersection."""
        c = a & b
        d = 0
        for m in self.masks:
            if not c & m:
                d += 1
        return d

    def supercube(self, a: int, b: int) -> int:
        """Smallest cube containing both cubes."""
        return a | b

    def cofactor(self, cube: int, against: int) -> int:
        """Shannon cofactor of *cube* with respect to *against*.

        Returns 0 (the canonical empty cube) when the two cubes do not
        intersect; otherwise each field becomes
        ``cube_field | ~against_field``.
        """
        if not self.intersects(cube, against):
            return 0
        return cube | (self.universe & ~against)

    def consensus(self, a: int, b: int) -> int:
        """Consensus (generalized) of two cubes, 0 when distance > 1."""
        d = self.distance(a, b)
        if d > 1:
            return 0
        c = a & b
        if d == 0:
            return c
        # raise the single conflicting variable to the union of the parts
        for v, m in enumerate(self.masks):
            if not c & m:
                return (c & ~m) | ((a | b) & m)
        return c  # unreachable

    def minterm_count(self, cube: int) -> int:
        """Number of minterms in the cube (product of field popcounts)."""
        # popcount is shift-invariant, so masking beats extracting the
        # field; this is the sort key of expand/reduce/containment
        n = 1
        for m in self.masks:
            n *= (cube & m).bit_count()
        return n

    def full_vars(self, cube: int) -> int:
        """Count of variables whose field is completely don't care."""
        n = 0
        for m in self.masks:
            if cube & m == m:
                n += 1
        return n

    # ------------------------------------------------------------------
    # text I/O (espresso-like, mostly for debugging and tests)
    # ------------------------------------------------------------------
    def cube_to_str(self, cube: int) -> str:
        """Render a cube: binary vars as 0/1/-, others as bit strings."""
        out = []
        for v, p in enumerate(self.parts):
            f = self.field(cube, v)
            if p == 2:
                out.append({1: "0", 2: "1", 3: "-", 0: "~"}[f])
            else:
                out.append(format(f, f"0{p}b")[::-1])
        return " ".join(out)

    def cube_from_str(self, text: str) -> int:
        """Parse the output of :meth:`cube_to_str`."""
        tokens = text.split()
        if len(tokens) != self.num_vars:
            raise ValueError("wrong number of variable tokens")
        fields = []
        for v, tok in enumerate(tokens):
            p = self.parts[v]
            if p == 2 and len(tok) == 1 and tok in "01-~":
                fields.append({"0": 1, "1": 2, "-": 3, "~": 0}[tok])
            else:
                if len(tok) != p:
                    raise ValueError(f"token {tok!r} wrong width for variable {v}")
                fields.append(int(tok[::-1], 2))
        return self.cube_from_fields(fields)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Format) and self.parts == other.parts

    def __hash__(self) -> int:
        return hash(self.parts)

    def __repr__(self) -> str:
        return f"Format(parts={self.parts})"


def binary_format(num_inputs: int, num_outputs: int) -> Format:
    """Convenience format: *num_inputs* binary variables plus an output part."""
    return Format([2] * num_inputs + [max(num_outputs, 1)])
