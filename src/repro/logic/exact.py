"""Exact two-level minimization for small functions (Quine-McCluskey style).

Provides the classical reference point for the heuristic minimizer:

* :func:`all_primes` — every prime implicant of ``on + dc`` by iterated
  consensus with single-cube containment (valid for multiple-valued
  positional covers: consensus is taken per variable);
* :func:`exact_minimize` — a minimum-cardinality cover of the on-set by
  primes, via essential-prime extraction, row/column dominance, and
  branch-and-bound over the cyclic core.

Intended for functions with at most a few thousand minterms — the
test-suite uses it to check that the espresso loop is close to optimal,
and the benchmarks report the gap (``bench_substrate``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.logic import backend
from repro.logic.cover import Cover
from repro.logic.cube import Format


class TooLarge(Exception):
    """Raised when the instance exceeds the exact solver's size guard."""


def _consensus_cubes(fmt: Format, a: int, b: int) -> List[int]:
    """Per-variable consensus set of two cubes.

    In the multiple-valued / multi-output setting, iterated consensus
    is complete only when distance-0 pairs also produce, for *every*
    variable, the cube that unions that variable's parts and
    intersects the rest (the classic distance-1 consensus is the
    special case where only the conflicting variable yields a
    non-empty cube).
    """
    inter = a & b
    empty_vars = [v for v, m in enumerate(fmt.masks) if not inter & m]
    if len(empty_vars) > 1:
        return []
    if len(empty_vars) == 1:
        m = fmt.masks[empty_vars[0]]
        c = (inter & ~m) | ((a | b) & m)
        return [] if fmt.is_empty(c) else [c]
    out = []
    for m in fmt.masks:
        out.append((inter & ~m) | ((a | b) & m))
    return out


def all_primes(on: Cover, dc: Optional[Cover] = None,
               max_cubes: int = 4000) -> Cover:
    """All prime implicants of the function ``on + dc``."""
    fmt = on.fmt
    pool: Set[int] = set(on.cubes)
    if dc is not None:
        pool.update(dc.cubes)
    cubes = _scc_set(fmt, pool)
    if len(cubes) > max_cubes:
        raise TooLarge(f"prime set exceeded {max_cubes} cubes")
    kernels = backend.kernels
    changed = True
    while changed:
        changed = False
        current = sorted(cubes)
        pool = kernels.pack(fmt, current)
        new: Set[int] = set()
        for i, a in enumerate(current):
            # one batched scan replaces the inner pairwise loop; the
            # per-pair cubes match _consensus_cubes (consensus is
            # symmetric, so scanning the tail covers each pair once);
            # slicing the packed pool reuses the round's packing
            for c in kernels.consensus_scan(fmt, pool[i + 1:], a):
                if fmt.is_empty(c):
                    continue
                if kernels.contain_any(fmt, pool, c):
                    continue
                new.add(c)
        if new:
            cubes = _scc_set(fmt, cubes | new)
            if len(cubes) > max_cubes:
                raise TooLarge(f"prime set exceeded {max_cubes} cubes")
            changed = True
    out = Cover(fmt)
    out.cubes = sorted(cubes)
    return out


def _scc_set(fmt: Format, cubes: Set[int]) -> Set[int]:
    """Single-cube containment over a set of cubes.

    Delegates to the batched kernel; the surviving *set* is independent
    of visit order (a cube is dropped iff some other cube properly
    contains it, and containment is transitive), so the kernel's
    canonical ordering returns exactly the set the old sequential scan
    kept.
    """
    return set(backend.kernels.single_cube_containment(fmt, list(cubes)))


def _on_minterms(on: Cover, max_minterms: int) -> List[int]:
    fmt = on.fmt
    seen: Set[int] = set()
    import itertools

    choices = [[1 << p for p in range(parts)] for parts in fmt.parts]
    total = 1
    for ch in choices:
        total *= len(ch)
        if total > 4 * max_minterms:
            break
    out: List[int] = []
    for combo in itertools.product(*choices):
        m = 0
        for v, f in enumerate(combo):
            m |= f << fmt.offsets[v]
        for c in on.cubes:
            if m & ~c == 0:
                if m not in seen:
                    seen.add(m)
                    out.append(m)
                    if len(out) > max_minterms:
                        raise TooLarge(
                            f"on-set exceeds {max_minterms} minterms")
                break
    return out


def exact_minimize(on: Cover, dc: Optional[Cover] = None,
                   max_minterms: int = 2048) -> Cover:
    """A minimum-cardinality prime cover of the on-set."""
    fmt = on.fmt
    if not on.cubes:
        return Cover(fmt)
    primes = all_primes(on, dc)
    minterms = _on_minterms(on, max_minterms)
    if dc is not None and dc.cubes:
        # minterms inside the dc-set need no cover (espresso semantics:
        # the dc-set overrides the on-set where they overlap)
        minterms = [m for m in minterms
                    if not any(m & ~c == 0 for c in dc.cubes)]
    covers_of: Dict[int, List[int]] = {}  # minterm -> prime indices
    prime_rows: List[Set[int]] = []
    for pi, p in enumerate(primes.cubes):
        row = {m for m in minterms if m & ~p == 0}
        prime_rows.append(row)
    for mi, m in enumerate(minterms):
        covers_of[m] = [pi for pi, row in enumerate(prime_rows) if m in row]
        if not covers_of[m]:
            raise AssertionError("prime generation missed a minterm")
    chosen = _solve_covering(minterms, prime_rows, covers_of)
    out = Cover(fmt)
    out.cubes = [primes.cubes[pi] for pi in sorted(chosen)]
    return out


def _solve_covering(
    minterms: List[int],
    prime_rows: List[Set[int]],
    covers_of: Dict[int, List[int]],
) -> Set[int]:
    """Minimum set cover by reduction + branch and bound."""
    # greedy upper bound
    best = _greedy_cover(set(minterms), prime_rows)
    state_best: List[Set[int]] = [best]

    def bound(uncovered: Set[int], chosen: Set[int]) -> int:
        # lower bound: independent minterms needing distinct primes
        remaining = set(uncovered)
        need = 0
        while remaining:
            m = next(iter(remaining))
            need += 1
            hit = set()
            for pi in covers_of[m]:
                hit |= prime_rows[pi] & remaining
            remaining -= hit | {m}
        return len(chosen) + need

    def recurse(uncovered: Set[int], chosen: Set[int]) -> None:
        if not uncovered:
            if len(chosen) < len(state_best[0]):
                state_best[0] = set(chosen)
            return
        if bound(uncovered, chosen) >= len(state_best[0]):
            return
        # branch on the minterm with the fewest covering primes
        m = min(uncovered, key=lambda x: len(covers_of[x]))
        for pi in sorted(covers_of[m],
                         key=lambda p: -len(prime_rows[p] & uncovered)):
            recurse(uncovered - prime_rows[pi], chosen | {pi})

    recurse(set(minterms), set())
    return state_best[0]


def _greedy_cover(uncovered: Set[int],
                  prime_rows: List[Set[int]]) -> Set[int]:
    chosen: Set[int] = set()
    left = set(uncovered)
    while left:
        pi = max(range(len(prime_rows)),
                 key=lambda p: len(prime_rows[p] & left))
        gain = prime_rows[pi] & left
        if not gain:
            raise AssertionError("greedy cover stuck: uncoverable minterm")
        chosen.add(pi)
        left -= gain
    return chosen
