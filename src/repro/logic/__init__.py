"""Two-level and multiple-valued logic substrate.

This package is a from-scratch reimplementation of the parts of
ESPRESSO-MV that NOVA depends on: positional-cube covers over mixed
binary / multiple-valued variables, the unate-recursive paradigm
(tautology, complement), and the EXPAND / REDUCE / IRREDUNDANT
minimization loop, including ``minimize(on, dc, off)`` with an explicit
off-set as required by symbolic minimization.
"""

from repro.logic.cover import Cover
from repro.logic.cube import Format
from repro.logic.espresso import espresso, minimize
from repro.logic.exact import all_primes, exact_minimize
from repro.logic.pla_io import PLA, parse_pla, write_pla
from repro.logic.verify import covers_equivalent, verify_minimization

__all__ = [
    "Format",
    "Cover",
    "espresso",
    "minimize",
    "all_primes",
    "exact_minimize",
    "PLA",
    "parse_pla",
    "write_pla",
    "covers_equivalent",
    "verify_minimization",
]
