"""Deterministic fault injection for the encoding pipeline.

The pipeline calls :func:`trip` at every stage boundary — parsing, MV
minimization, each encoding attempt, the evaluation re-minimization,
and the verification gate.  When no plan is active (the production
case) a trip is one module-global load plus an ``is None`` test; under
:func:`inject` a matching :class:`Fault` raises its exception at the
site, exactly as a real failure there would, so tests can prove the
fallback chain recovers from every stage without relying on timing or
randomness.

Usage::

    from repro.errors import BudgetExhausted
    from repro.testing import faults

    with faults.inject(faults.Fault("encode", BudgetExhausted,
                                    match={"algorithm": "iexact"})):
        result = encode_fsm(fsm, "iexact")   # iexact dies, ihybrid runs

Faults fire on every matching trip by default; ``times=N`` arms a fault
for the first *N* matching trips only, which models transient failures
(e.g. a verification gate that fails once and passes on the fallback).
The plan records every firing in ``plan.fired`` for assertions.
"""

from __future__ import annotations

import builtins
from contextlib import contextmanager
from dataclasses import dataclass, field
import os
import time
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

from repro.errors import ERROR_CLASSES, ReproError

#: Stage names with a trip site in the pipeline, in pipeline order.
#: ``admit``/``dispatch``/``respond`` are the *serving* stages of
#: :mod:`repro.server`: ``admit`` trips where admission control decides
#: (a raised ``OverloadError`` models a full queue), ``dispatch`` trips
#: just before a cold request spawns its worker (crash the leader's
#: worker here to exercise coalesced-failure recovery), and ``respond``
#: trips before the HTTP response is written (a ``sleep`` action models
#: a stuck handler, a raise models a response-path failure).
#: ``claim``/``steal``/``heartbeat`` are the *work-stealing* stages of
#: :mod:`repro.runner.lease`, tripped in the claimant parent: ``claim``
#: fires on every acquire attempt (before any file is touched),
#: ``steal`` fires after staleness is established but before the
#: replacing claim is published (an ``exit`` action here models a
#: claimant dying mid-steal), and ``heartbeat`` fires at each renewal
#: (a ``sleep`` longer than the TTL models a paused zombie).
STAGES = ("parse", "mv_min", "encode", "minimize", "verify",
          "admit", "dispatch", "respond",
          "claim", "steal", "heartbeat")

#: What a firing fault does: raise its exception, hang the process
#: (``sleep`` — models a stuck C-level loop the cooperative Budget
#: cannot interrupt), or die without cleanup (``exit`` via
#: ``os._exit`` — models an OOM kill or a segfault).
ACTIONS = ("raise", "sleep", "exit")


@dataclass
class Fault:
    """One planned failure: act when *stage* trips.

    ``match`` restricts firing to trips whose context carries equal
    values for every key (e.g. ``{"algorithm": "ihybrid"}``); keys the
    trip site does not report never match.  ``times`` bounds how often
    the fault fires (``None`` = every matching trip).  ``action``
    selects what firing does (see :data:`ACTIONS`): ``raise`` (the
    default) raises ``exc``; ``sleep`` blocks for ``seconds`` and then
    returns, planting a hang; ``exit`` terminates the process
    immediately with ``exit_code``, bypassing all cleanup.
    """

    stage: str
    exc: Union[Type[BaseException], BaseException] = None  # type: ignore[assignment]
    match: Dict[str, str] = field(default_factory=dict)
    times: Optional[int] = None
    fired: int = 0
    action: str = "raise"
    seconds: float = 0.0
    exit_code: int = 9

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"unknown fault stage {self.stage!r}; "
                             f"choose from {STAGES}")
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r}; "
                             f"choose from {ACTIONS}")
        if self.exc is None:
            from repro.errors import BudgetExhausted

            self.exc = BudgetExhausted

    # -- cross-process transport ---------------------------------------
    def to_dict(self) -> Dict:
        """JSON-safe spec; :meth:`from_dict` rebuilds it in a worker."""
        exc = self.exc if isinstance(self.exc, type) else type(self.exc)
        return {
            "stage": self.stage,
            "exc": exc.__name__,
            "match": dict(self.match),
            "times": self.times,
            "action": self.action,
            "seconds": self.seconds,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, spec: Dict) -> "Fault":
        """Rebuild a fault from :meth:`to_dict` output (exception classes
        resolve by name from the taxonomy, then from builtins)."""
        name = spec.get("exc", "BudgetExhausted")
        exc = ERROR_CLASSES.get(name) or getattr(builtins, name, None)
        if not (isinstance(exc, type) and issubclass(exc, BaseException)):
            raise ValueError(f"unknown fault exception {name!r}")
        return cls(
            stage=spec["stage"],
            exc=exc,
            match=dict(spec.get("match") or {}),
            times=spec.get("times"),
            action=spec.get("action", "raise"),
            seconds=float(spec.get("seconds", 0.0)),
            exit_code=int(spec.get("exit_code", 9)),
        )

    def matches(self, stage: str, context: Dict[str, str]) -> bool:
        if stage != self.stage:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        return all(context.get(k) == v for k, v in self.match.items())

    def build(self, stage: str, context: Dict[str, str]) -> BaseException:
        if isinstance(self.exc, BaseException):
            return self.exc
        message = f"injected fault at stage {stage!r}"
        if issubclass(self.exc, ReproError):
            return self.exc(message, stage=stage,
                            machine=context.get("machine"))
        return self.exc(message)


@dataclass
class FaultPlan:
    """The set of armed faults plus a log of what fired where."""

    faults: List[Fault]
    fired: List[Tuple[str, Dict[str, str]]] = field(default_factory=list)

    def on_trip(self, stage: str, context: Dict[str, str]) -> None:
        for fault in self.faults:
            if fault.matches(stage, context):
                fault.fired += 1
                self.fired.append((stage, dict(context)))
                if fault.action == "sleep":
                    time.sleep(fault.seconds)
                    continue
                if fault.action == "exit":
                    os._exit(fault.exit_code)
                raise fault.build(stage, context)


# The active plan; ``None`` means injection is off and every trip is a
# cheap no-op.  Single plan at a time — tests are single-threaded and
# nesting restores the previous plan on exit.
ACTIVE: Optional[FaultPlan] = None


def trip(stage: str, **context: str) -> None:
    """Fault-injection site: raise the armed fault for *stage*, if any."""
    if ACTIVE is not None:
        ACTIVE.on_trip(stage, context)


def arm(*faults: Fault) -> FaultPlan:
    """Install *faults* for the rest of the process (no scoping).

    Used by batch-runner workers, whose whole process is one task: the
    parent ships fault specs (see :meth:`Fault.to_dict`) in the task
    and the worker arms them before running the pipeline.
    """
    global ACTIVE
    plan = FaultPlan(list(faults))
    ACTIVE = plan
    return plan


@contextmanager
def inject(*faults: Fault) -> Iterator[FaultPlan]:
    """Arm *faults* for the duration of the block."""
    global ACTIVE
    plan = FaultPlan(list(faults))
    prev = ACTIVE
    ACTIVE = plan
    try:
        yield plan
    finally:
        ACTIVE = prev


def corrupt_kiss(text: str, mode: str = "truncate_row") -> str:
    """Deterministically corrupt KISS2 *text* (parser-fault test input).

    Modes: ``truncate_row`` drops the last field of the first
    transition row; ``bad_directive`` prepends an unknown directive;
    ``duplicate_row`` repeats the first transition row with its outputs
    flipped (a contradictory transition).
    """
    lines = text.splitlines()
    row_idx = next((i for i, ln in enumerate(lines)
                    if ln.split("#", 1)[0].strip()
                    and not ln.strip().startswith(".")), None)
    if mode == "bad_directive":
        return ".corrupted 1\n" + text
    if row_idx is None:
        raise ValueError("no transition row to corrupt")
    if mode == "truncate_row":
        fields = lines[row_idx].split()
        lines[row_idx] = " ".join(fields[:-1])
        return "\n".join(lines) + "\n"
    if mode == "duplicate_row":
        fields = lines[row_idx].split()
        flipped = "".join("1" if ch == "0" else "0" if ch == "1" else ch
                          for ch in fields[-1])
        fields[-1] = flipped
        lines.insert(row_idx + 1, " ".join(fields))
        return "\n".join(lines) + "\n"
    raise ValueError(f"unknown corruption mode {mode!r}")
