"""Test-support utilities: deterministic fault injection for the
pipeline, plus the runtime crash-consistency sanitizer."""

from repro.testing.faults import Fault, FaultPlan, inject, trip
from repro.testing.sanitize import (
    AtomicWriteSanitizer,
    SanitizerReport,
    slow_callback_watch,
    watched_run,
)

__all__ = [
    "AtomicWriteSanitizer",
    "Fault",
    "FaultPlan",
    "SanitizerReport",
    "inject",
    "slow_callback_watch",
    "trip",
    "watched_run",
]
