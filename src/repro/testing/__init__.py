"""Test-support utilities: deterministic fault injection for the pipeline."""

from repro.testing.faults import Fault, FaultPlan, inject, trip

__all__ = ["Fault", "FaultPlan", "inject", "trip"]
