"""Runtime crash-consistency sanitizer for test runs.

The static rules (NV003, NV007) prove the *shape* of the durability
protocol — tmp + ``fsync`` + ``os.replace`` — at the call sites they
can see.  This module checks the protocol *dynamically*: while armed,
it interposes on ``open``/``os.fsync``/``os.replace`` and verifies
that every rename-publish actually carried its data to disk first, and
that no temp file is left stranded when the watch ends.  A write path
that drifts from the protocol (a new call site, a refactor that drops
the fsync) fails the sanitized test run instead of surviving until a
power cut reorders the metadata ahead of the data.

Armed only when :func:`repro.config.sanitize_enabled` says so (the
``NOVA_SANITIZE`` variable, a ``$NOVA_CONFIG`` key, or a
``config_scope(sanitize=True)`` overlay) — the default test run pays
nothing.  CI runs the suite once more with the sanitizer on.

Violations reported:

* ``unsynced-replace`` — ``os.replace(src, dst)`` where *src* was
  opened for writing in this process but never ``os.fsync``'d: on
  crash the rename can be durable while the contents are not, and
  readers observe a complete-looking, empty-or-torn published file;
* ``orphaned-tmp`` — a ``*.tmp`` file created during the watch that
  was neither published (replaced/linked away) nor cleaned up and
  still exists when the watch closes;
* ``slow-callback`` — an event-loop callback exceeded the asyncio
  debug threshold (see :func:`slow_callback_watch`), i.e. something
  blocked the loop — the dynamic twin of rule NV008.

Interposition is process-local: worker *subprocesses* are exercised by
their own sanitized runs, not through this one.  The shims keep their
bookkeeping best-effort — any tracking error degrades to "no report",
never to breaking the I/O under test.
"""

from __future__ import annotations

import asyncio
import builtins
import io
import logging
import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Set

__all__ = [
    "AtomicWriteSanitizer",
    "SanitizerReport",
    "slow_callback_watch",
    "watched_run",
]

_WRITE_MODE_CHARS = ("w", "a", "x", "+")


@dataclass
class SanitizerReport:
    """One observed crash-consistency violation."""

    kind: str  # "unsynced-replace" | "orphaned-tmp" | "slow-callback"
    path: str  # offending path, or the callback repr for slow-callback
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.kind}] {self.path}: {self.detail}"


def _is_write_mode(mode: str) -> bool:
    return any(ch in mode for ch in _WRITE_MODE_CHARS)


def _is_tmp_name(path: str) -> bool:
    return os.path.basename(path).endswith(".tmp")


class AtomicWriteSanitizer:
    """Context manager interposing on the durability syscalls.

    While entered, ``builtins.open``/``io.open``, ``os.fsync``,
    ``os.replace``, ``os.link``, ``os.unlink``/``os.remove`` route
    through shims that track, per path: was it opened for writing, was
    its descriptor fsync'd, was it published or cleaned up.  Findings
    accumulate in :attr:`reports`; the ``with`` block itself never
    raises — asserting on the reports is the caller's (the pytest
    fixture's) job, so one violation reads as a test failure naming
    the path, not a stack trace inside ``os.replace``.
    """

    def __init__(self) -> None:
        self.reports: List[SanitizerReport] = []
        #: paths opened with a writing mode during the watch
        self._written: Set[str] = set()
        #: written paths whose descriptor was fsync'd
        self._synced: Set[str] = set()
        #: written *.tmp paths neither published nor removed yet
        self._live_tmp: Set[str] = set()
        #: fd -> path for descriptors we handed out
        self._fd_paths: Dict[int, str] = {}
        self._saved: Dict[str, Any] = {}
        self._entered = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "AtomicWriteSanitizer":
        self._saved = {
            "open": builtins.open,
            "io_open": io.open,
            "fsync": os.fsync,
            "replace": os.replace,
            "link": os.link,
            "unlink": os.unlink,
            "remove": os.remove,
        }
        builtins.open = self._open  # type: ignore[assignment]
        io.open = self._open  # type: ignore[assignment]
        os.fsync = self._fsync  # type: ignore[assignment]
        os.replace = self._replace  # type: ignore[assignment]
        os.link = self._link  # type: ignore[assignment]
        os.unlink = self._unlink  # type: ignore[assignment]
        os.remove = self._unlink  # type: ignore[assignment]
        self._entered = True
        return self

    def __exit__(self, *exc_info: Any) -> None:
        builtins.open = self._saved["open"]
        io.open = self._saved["io_open"]
        os.fsync = self._saved["fsync"]
        os.replace = self._saved["replace"]
        os.link = self._saved["link"]
        os.unlink = self._saved["unlink"]
        os.remove = self._saved["remove"]
        self._entered = False
        for path in sorted(self._live_tmp):
            if os.path.exists(path):
                self.reports.append(SanitizerReport(
                    "orphaned-tmp", path,
                    "temp file written during the watch was never "
                    "published (os.replace/os.link) nor removed — a "
                    "crashed writer would leave it to confuse repair "
                    "and leak disk"))

    # ------------------------------------------------------------------
    # shims
    # ------------------------------------------------------------------
    def _open(self, file: Any, mode: str = "r", *args: Any,
              **kwargs: Any) -> Any:
        fh = self._saved["open"](file, mode, *args, **kwargs)
        try:
            if isinstance(mode, str) and _is_write_mode(mode) \
                    and isinstance(file, (str, os.PathLike)):
                path = os.fspath(file)
                if isinstance(path, bytes):
                    path = os.fsdecode(path)
                path = os.path.abspath(path)
                self._written.add(path)
                self._synced.discard(path)
                if _is_tmp_name(path):
                    self._live_tmp.add(path)
                self._fd_paths[fh.fileno()] = path
        except (TypeError, ValueError, AttributeError, OSError):
            # exotic path objects or fd-less streams: skip tracking,
            # never break the caller's I/O
            pass
        return fh

    def _fsync(self, fd: int) -> None:
        self._saved["fsync"](fd)
        path = self._fd_paths.get(fd)
        if path is not None:
            self._synced.add(path)

    def _replace(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._note_publish(src, "os.replace")
        self._saved["replace"](src, dst, **kwargs)

    def _link(self, src: Any, dst: Any, **kwargs: Any) -> None:
        self._note_publish(src, "os.link")
        self._saved["link"](src, dst, **kwargs)

    def _unlink(self, path: Any, **kwargs: Any) -> None:
        self._saved["unlink"](path, **kwargs)
        try:
            self._live_tmp.discard(self._canonical(path))
        except (TypeError, ValueError):
            pass  # non-path argument (e.g. fd): nothing tracked for it

    # ------------------------------------------------------------------
    @staticmethod
    def _canonical(path: Any) -> str:
        out = os.fspath(path)
        if isinstance(out, bytes):
            out = os.fsdecode(out)
        return os.path.abspath(out)

    def _note_publish(self, src: Any, how: str) -> None:
        try:
            path = self._canonical(src)
        except (TypeError, ValueError):
            return  # non-path source: nothing tracked for it
        # only tmp-staged publishes carry the protocol: a rename-aside
        # of an existing file (blob quarantine) has no data to lose
        if how == "os.replace" and _is_tmp_name(path) \
                and path in self._written and path not in self._synced:
            self.reports.append(SanitizerReport(
                "unsynced-replace", path,
                "published with os.replace without an os.fsync of the "
                "written data — after a crash the rename can be "
                "durable while the contents are not, so readers see a "
                "complete-looking torn file"))
        # published (even unsynced): no longer an orphan candidate
        self._live_tmp.discard(path)


# ----------------------------------------------------------------------
# the event-loop half: slow-callback detection
# ----------------------------------------------------------------------
class _SlowCallbackHandler(logging.Handler):
    def __init__(self, reports: List[SanitizerReport]) -> None:
        super().__init__(level=logging.WARNING)
        self.reports = reports

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            self.reports.append(SanitizerReport(
                "slow-callback", message.split(" took ")[0].strip(),
                message))


@contextmanager
def slow_callback_watch(
        threshold: float = 0.5) -> Iterator[List[SanitizerReport]]:
    """Collect asyncio slow-callback warnings as sanitizer reports.

    Arms the ``asyncio`` logger with a capturing handler; the loop
    itself must run in debug mode for asyncio to emit the warnings —
    :func:`watched_run` does both.  *threshold* is generous by default
    (0.5 s): the point is catching synchronous work parked on the loop
    (the dynamic twin of NV008), not timing jitter on a loaded CI box.
    """
    reports: List[SanitizerReport] = []
    handler = _SlowCallbackHandler(reports)
    logger = logging.getLogger("asyncio")
    old_level = logger.level
    logger.addHandler(handler)
    if logger.level > logging.WARNING or logger.level == logging.NOTSET:
        logger.setLevel(logging.WARNING)
    try:
        yield reports
    finally:
        logger.removeHandler(handler)
        logger.setLevel(old_level)


def watched_run(coro: Any, threshold: float = 0.5) -> Any:
    """``asyncio.run`` with the slow-callback detector armed.

    Runs *coro* on a debug-mode loop with ``slow_callback_duration``
    set to *threshold* and raises ``AssertionError`` naming the
    callback if anything held the loop longer — so a blocking call
    that sneaks past the static NV008 check still fails the test that
    exercises it.
    """
    async def _with_threshold() -> Any:
        loop = asyncio.get_running_loop()
        loop.slow_callback_duration = threshold
        return await coro

    with slow_callback_watch(threshold) as reports:
        result = asyncio.run(_with_threshold(), debug=True)
    if reports:
        lines = "\n".join(str(r) for r in reports)
        raise AssertionError(
            f"event loop blocked past {threshold}s:\n{lines}")
    return result
