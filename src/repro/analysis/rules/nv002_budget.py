"""NV002 — budget coverage of hot loops.

The pipeline honours wall-clock timeouts *cooperatively*: exact and
heuristic search loops must poll the :class:`repro.perf.budget.Budget`
(via ``charge``/``check_time``/``expired``/``tick``) often enough that a
deadline actually interrupts them.  A loop that does real work without
ever touching a budget can run unbounded and turns ``timeout=`` into a
suggestion.

For every ``for``/``while`` loop in the designated hot modules
(``encoding/iexact.py``, ``encoding/ihybrid.py``, ``logic/espresso.py``,
``logic/urp.py``) the rule requires either

* a budget call somewhere in the loop's subtree (a tick inside a nested
  loop or a called-per-iteration helper counts when it is written in
  the loop body), or
* a justified ``# nova-lint: disable=NV002 -- reason`` suppression.

Loops that only shuffle data — every call in their own body (nested
loops and function definitions excluded) is on the cheap-call list —
are exempt: bounded bookkeeping needs no metering.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    register,
    walk_skipping,
)

_LOOPS = (ast.For, ast.While, ast.AsyncFor)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _has_budget_call(loop: ast.AST, config: LintConfig) -> bool:
    for node in ast.walk(loop):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in config.budget_calls:
                return True
    return False


def _significant_calls(loop: ast.stmt,
                       config: LintConfig) -> List[ast.Call]:
    """Non-cheap calls at the loop's own level.

    Nested loops are excluded (they are checked on their own) and so
    are nested function definitions (not executed per iteration).  The
    loop's iterable expression *is* included: consuming a generator or
    re-evaluating a ``while`` guard does per-iteration work.
    """
    out = []
    roots: List[ast.AST] = list(getattr(loop, "body", []))
    roots += list(getattr(loop, "orelse", []))
    if isinstance(loop, (ast.For, ast.AsyncFor)):
        roots.append(loop.iter)
    elif isinstance(loop, ast.While):
        roots.append(loop.test)
    for root in roots:
        candidates = [root] if isinstance(root, ast.Call) else []
        candidates += list(walk_skipping(root, _LOOPS + _SCOPES))
        for node in candidates:
            if isinstance(node, ast.Call):
                name = call_name(node)
                if name is None or (name not in config.cheap_calls
                                    and name not in config.budget_calls):
                    out.append(node)
    return out


@register
class BudgetCoverage(Rule):
    id = "NV002"
    title = "hot loops poll the cooperative budget"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _LOOPS):
                continue
            if _has_budget_call(node, config):
                continue
            significant = _significant_calls(node, config)
            if not significant:
                continue
            first = call_name(significant[0]) or "<expr>"
            yield ctx.finding(
                self, node,
                f"loop does per-iteration work ({first}(), "
                f"{len(significant)} non-trivial call(s)) without a "
                f"budget check — add budget.charge()/check_time()/"
                f"tick() or a justified suppression")
