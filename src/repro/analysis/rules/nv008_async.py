"""NV008 — async hygiene on the event-loop path.

The encode service (DESIGN §6.9) runs every request on a single
asyncio loop; one blocking call in a coroutine — or in any synchronous
helper a coroutine reaches — stalls every connection at once, which is
exactly the failure the pool/admission machinery exists to prevent.
And an await on *external* work (a peer's socket, a subprocess pipe)
with no deadline turns a slow client into a wedged handler slot.

Two sub-checks, both built on the module call graph:

* **no blocking calls on the loop**: ``time.sleep``, ``subprocess.*``,
  sync ``open``, and unbounded ``Future.result()`` are findings inside
  any function in :meth:`ModuleInfo.coroutine_reachable` — coroutines
  plus the synchronous helpers they transitively call.  Functions only
  *referenced* (handed to ``asyncio.to_thread`` or an executor) run
  off-loop and are correctly exempt;
* **deadlines on external awaits**: ``await x.drain()`` and friends
  (``config.external_awaits``) must carry a ``timeout=``/``deadline=``
  keyword or sit under ``asyncio.timeout(...)``/``wait_for`` — an
  await whose completion is controlled by a remote peer needs a bound.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    dotted_name,
    register,
)
from repro.analysis.dataflow import ModuleInfo

_TIMEOUT_KWARGS = ("timeout", "deadline")
_TIMEOUT_SCOPES = ("timeout", "timeout_at", "move_on_after", "fail_after")


def _has_deadline_kwarg(call: ast.Call) -> bool:
    return any(kw.arg in _TIMEOUT_KWARGS for kw in call.keywords)


@register
class AsyncHygiene(Rule):
    id = "NV008"
    title = "no blocking work on the event loop; external awaits bounded"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        info = ctx.module_info()
        on_loop = info.coroutine_reachable()
        yield from self._check_blocking(ctx, info, config, on_loop)
        yield from self._check_unbounded_awaits(ctx, info, config)

    # ------------------------------------------------------------------
    def _check_blocking(self, ctx: FileContext, info: ModuleInfo,
                        config: LintConfig,
                        on_loop) -> Iterator[Finding]:
        for qual in sorted(on_loop):
            fi = info.functions[qual]
            where = ("coroutine" if fi.is_async
                     else f"function reachable from a coroutine")
            for call in fi.calls():
                dotted = dotted_name(call.func)
                if dotted in config.blocking_calls:
                    yield ctx.finding(
                        self, call,
                        f"blocking call {dotted}() in {where} "
                        f"{fi.qualname!r} stalls the event loop — move "
                        f"it behind asyncio.to_thread or the worker "
                        f"pool")
                elif call_name(call) == "open" \
                        and isinstance(call.func, ast.Name):
                    yield ctx.finding(
                        self, call,
                        f"synchronous file I/O (open) in {where} "
                        f"{fi.qualname!r} blocks the event loop — do "
                        f"the I/O off-loop and await the result")
                elif call_name(call) == "result" \
                        and isinstance(call.func, ast.Attribute) \
                        and not call.args \
                        and not _has_deadline_kwarg(call):
                    yield ctx.finding(
                        self, call,
                        f".result() without a timeout in {where} "
                        f"{fi.qualname!r} can block the loop forever — "
                        f"pass timeout= or await the future instead")

    def _check_unbounded_awaits(self, ctx: FileContext, info: ModuleInfo,
                                config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Await) \
                    or not isinstance(node.value, ast.Call):
                continue
            call = node.value
            name = call_name(call)
            if name not in config.external_awaits:
                continue
            if _has_deadline_kwarg(call):
                continue
            if self._under_timeout_scope(info, node):
                continue
            yield ctx.finding(
                self, node,
                f"await {name}() has no deadline — completion is "
                f"controlled by the peer; wrap in asyncio.wait_for or "
                f"an asyncio.timeout() scope so a slow client cannot "
                f"wedge this handler")

    @staticmethod
    def _under_timeout_scope(info: ModuleInfo, node: ast.AST) -> bool:
        """Is *node* inside ``async with asyncio.timeout(...)`` (or a
        sibling deadline scope) within its function?"""
        cur: Optional[ast.AST] = info.parent(node)
        while cur is not None \
                and not isinstance(cur, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
            if isinstance(cur, (ast.With, ast.AsyncWith)):
                for item in cur.items:
                    expr = item.context_expr
                    if isinstance(expr, ast.Call) \
                            and call_name(expr) in _TIMEOUT_SCOPES:
                        return True
            cur = info.parent(cur)
        return False
