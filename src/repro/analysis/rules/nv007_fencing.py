"""NV007 — lease/fencing discipline in the work-stealing runner.

The cooperative batch mode (``nova batch --join``) is correct only
while four invariants hold together (DESIGN §6.11): claims are taken
through ``LeaseDir.acquire`` and *checked* (it returns ``None`` when
another claimant holds the task), long claim loops renew their leases
(or the TTL reaper steals live work), merge precedence is the full
``(epoch, claimant)`` tuple (a bare epoch comparison re-introduces the
tie-break nondeterminism the tuple exists to kill), and every durable
row carries its fencing stamp.  Each sub-check below guards one of
those, using the dataflow layer to place calls in their functions,
resolve receivers, and approximate dominance:

* ``acquire``/``heartbeat`` results on lease receivers must be
  None-guarded by the immediately following statement;
* a loop that claims leases must also heartbeat them somewhere in the
  same loop;
* ordering comparisons (``<``/``>``/``<=``/``>=``) on a bare ``epoch``
  name are findings — compare ``(epoch, claimant)`` tuples;
* a journal row that stamps one of ``epoch``/``claimant`` must stamp
  both (a torn stamp loses the merge tie-break);
* raw writes whose path dataflow reaches a shard/manifest name must go
  through a blessed atomic writer (shares NV003's ``atomic_writers``).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    dotted_name,
    register,
)
from repro.analysis.dataflow import FunctionInfo, ModuleInfo, receiver_of

_ORDERING = (ast.Lt, ast.Gt, ast.LtE, ast.GtE)


def _terminal_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _is_lease_receiver(call: ast.Call, config: LintConfig) -> bool:
    recv = receiver_of(call)
    if recv is None:
        return False
    dotted = dotted_name(recv) or _terminal_name(recv) or ""
    return any(marker in dotted.lower()
               for marker in config.lease_receivers)


def _stamp_keys(fi: FunctionInfo, entry_name: str) -> Set[str]:
    """String keys ever written into *entry_name*: subscript stores
    plus the keys of any dict literal it was bound from."""
    keys: Set[str] = set()
    for node in fi.body_nodes():
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == entry_name \
                        and isinstance(target.slice, ast.Constant) \
                        and isinstance(target.slice.value, str):
                    keys.add(target.slice.value)
    for value in fi.bindings.get(entry_name, ()):
        if isinstance(value, ast.Dict):
            for key in value.keys:
                if isinstance(key, ast.Constant) \
                        and isinstance(key.value, str):
                    keys.add(key.value)
    return keys


@register
class LeaseFencing(Rule):
    id = "NV007"
    title = "lease claims are checked, renewed, and fence the journal"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        info = ctx.module_info()
        yield from self._check_guarded_claims(ctx, info, config)
        yield from self._check_heartbeats(ctx, info, config)
        yield from self._check_epoch_comparisons(ctx, info)
        yield from self._check_journal_stamps(ctx, info, config)
        yield from self._check_raw_shard_writes(ctx, info, config)

    # ------------------------------------------------------------------
    def _check_guarded_claims(self, ctx: FileContext, info: ModuleInfo,
                              config: LintConfig) -> Iterator[Finding]:
        """``x = leases.acquire(...)`` must be followed by a None-guard
        on ``x`` — both methods return None when the claim fails."""
        for fi in info.functions.values():
            for node in fi.body_nodes():
                if not isinstance(node, ast.Assign) \
                        or not isinstance(node.value, ast.Call):
                    continue
                call = node.value
                if call_name(call) not in ("acquire", "heartbeat"):
                    continue
                if not _is_lease_receiver(call, config):
                    continue
                if len(node.targets) != 1 \
                        or not isinstance(node.targets[0], ast.Name):
                    continue
                name = node.targets[0].id
                if not info.none_guard_follows(node, name):
                    yield ctx.finding(
                        self, call,
                        f"{call_name(call)}() result {name!r} is used "
                        f"without a None-guard — a failed claim returns "
                        f"None; check it before touching the task")

    def _check_heartbeats(self, ctx: FileContext, info: ModuleInfo,
                          config: LintConfig) -> Iterator[Finding]:
        """A loop that claims leases must renew them in the same loop,
        or a claimant slower than the TTL looks dead and is stolen."""
        for fi in info.functions.values():
            for call in fi.calls():
                if call_name(call) != "acquire" \
                        or not _is_lease_receiver(call, config):
                    continue
                loop = info.enclosing_loop(call, outermost=True)
                if loop is None:
                    continue
                has_heartbeat = any(
                    isinstance(sub, ast.Call)
                    and call_name(sub) == "heartbeat"
                    for sub in ast.walk(loop))
                if not has_heartbeat:
                    yield ctx.finding(
                        self, call,
                        "claim loop never heartbeats its leases — work "
                        "outlasting the TTL will be presumed dead and "
                        "stolen; renew with heartbeat() inside the loop")

    def _check_epoch_comparisons(self, ctx: FileContext,
                                 info: ModuleInfo) -> Iterator[Finding]:
        """Ordering on a bare epoch loses the claimant tie-break."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            bare = None
            for i, op in enumerate(node.ops):
                if not isinstance(op, _ORDERING):
                    continue
                for expr in (operands[i], operands[i + 1]):
                    name = _terminal_name(expr)
                    if name is not None and name.lower().endswith("epoch"):
                        bare = name
                        break
                if bare is not None:
                    break
            if bare is not None:
                yield ctx.finding(
                    self, node,
                    f"ordering comparison on bare {bare!r} — merge "
                    f"precedence is the (epoch, claimant) tuple; "
                    f"comparing epochs alone makes same-epoch ties "
                    f"nondeterministic")

    def _check_journal_stamps(self, ctx: FileContext, info: ModuleInfo,
                              config: LintConfig) -> Iterator[Finding]:
        """A journal row stamping one of epoch/claimant must stamp both."""
        for fi in info.functions.values():
            for node in fi.body_nodes():
                if not isinstance(node, ast.Call) \
                        or call_name(node) != "append":
                    continue
                recv = receiver_of(node)
                recv_name = _terminal_name(recv) if recv else None
                if recv_name is None:
                    continue
                is_journal = (
                    fi.binds_from_call(recv_name, config.journal_classes)
                    or (recv_name in fi.params
                        and fi.params[recv_name] is not None
                        and _terminal_name(fi.params[recv_name])
                        in config.journal_classes))
                if not is_journal:
                    continue
                if not node.args or not isinstance(node.args[0], ast.Name):
                    continue
                keys = _stamp_keys(fi, node.args[0].id)
                has_epoch = "epoch" in keys
                has_claimant = "claimant" in keys
                if has_epoch != has_claimant:
                    missing = "claimant" if has_epoch else "epoch"
                    yield ctx.finding(
                        self, node,
                        f"journal row is stamped with only half the "
                        f"fencing key ({missing!r} never written) — "
                        f"merge precedence needs both epoch and "
                        f"claimant on every row")

    def _check_raw_shard_writes(self, ctx: FileContext, info: ModuleInfo,
                                config: LintConfig) -> Iterator[Finding]:
        """Shard/manifest bytes only reach disk through blessed writers."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "open":
                args = node.args
            elif name in ("write_text", "write_bytes") \
                    and isinstance(node.func, ast.Attribute):
                args = [node.func.value]
            else:
                continue
            fi = info.enclosing_function(node)
            if fi is not None and (
                    fi.qualname in config.atomic_writers
                    or fi.name in config.atomic_writers):
                continue
            consts: Set[str] = set()
            for arg in args:
                consts |= info.constant_strings_in(arg, fi)
            if any(marker in const for marker in config.shard_markers
                   for const in consts):
                yield ctx.finding(
                    self, node,
                    "raw write to a shard/manifest path — these files "
                    "carry the fencing protocol; publish through "
                    "Journal.append or write_manifest so rows stay "
                    "fsync'd, single-writer, and atomic")
