"""The shipped rules.  Importing this package registers all of them."""

from repro.analysis.rules import (  # noqa: F401
    nv001_fingerprint,
    nv002_budget,
    nv003_atomic,
    nv004_taxonomy,
    nv005_determinism,
    nv006_spawn,
    nv007_fencing,
    nv008_async,
    nv009_lifetime,
    nv010_config,
)
