"""NV006 — spawn-safety of runner worker modules.

The batch runner starts workers with the ``spawn`` method: every worker
re-imports its module in a fresh interpreter, and everything the parent
sends across the pipe is pickled.  A module-level side effect (opening
a file, starting a thread, touching the network) therefore runs once
*per worker*, and a module-level object that does those things lazily
is a pickle bomb waiting for the first task.

Worker modules must be import-clean.  At module level the rule allows
only: the docstring, imports, ``def``/``class`` statements, ``if
TYPE_CHECKING:`` and ``if __name__ == "__main__":`` guards,
``try:``-wrapped import fallbacks, and assignments of *static* values —
constants, containers of statics, aliases, and calls to a short list of
pure factories (``frozenset``, ``namedtuple``, ...).  Everything else
is a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    register,
)


def _is_static(value: ast.expr, config: LintConfig) -> bool:
    if isinstance(value, ast.Constant):
        return True
    if isinstance(value, (ast.Name, ast.Attribute)):
        return True  # alias of something already imported
    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
        return all(_is_static(e, config) for e in value.elts)
    if isinstance(value, ast.Dict):
        return all(k is not None and _is_static(k, config)
                   for k in value.keys) \
            and all(_is_static(v, config) for v in value.values)
    if isinstance(value, ast.UnaryOp):
        return _is_static(value.operand, config)
    if isinstance(value, ast.BinOp):
        return _is_static(value.left, config) \
            and _is_static(value.right, config)
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else None)
        if name not in config.spawn_safe_factories:
            return False
        return all(_is_static(a, config) for a in value.args) \
            and all(_is_static(kw.value, config)
                    for kw in value.keywords)
    return False


def _guard_kind(stmt: ast.If) -> Optional[str]:
    t = stmt.test
    if isinstance(t, ast.Compare) and isinstance(t.left, ast.Name) \
            and t.left.id == "__name__":
        return "main"
    if isinstance(t, ast.Name) and t.id == "TYPE_CHECKING":
        return "typing"
    if isinstance(t, ast.Attribute) and t.attr == "TYPE_CHECKING":
        return "typing"
    return None


def _is_import_fallback(stmt: ast.Try) -> bool:
    return all(isinstance(s, (ast.Import, ast.ImportFrom))
               for s in stmt.body)


@register
class SpawnSafety(Rule):
    id = "NV006"
    title = "worker modules are import-clean across the spawn boundary"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        for i, stmt in enumerate(ctx.tree.body):
            if isinstance(stmt, (ast.Import, ast.ImportFrom,
                                 ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if i == 0 and isinstance(stmt, ast.Expr) \
                    and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str):
                continue  # docstring
            if isinstance(stmt, ast.If) and _guard_kind(stmt):
                continue
            if isinstance(stmt, ast.Try) and _is_import_fallback(stmt):
                continue
            if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                value = stmt.value
                if value is None or _is_static(value, config):
                    continue
                yield ctx.finding(
                    self, stmt,
                    "module-level assignment computes a non-static "
                    "value — it runs on every spawn re-import and may "
                    "not survive pickling; build it lazily inside the "
                    "worker entry point")
                continue
            yield ctx.finding(
                self, stmt,
                f"module-level {type(stmt).__name__} is a side effect "
                f"at import time — spawn re-imports this module in "
                f"every worker; move it under "
                f"'if __name__ == \"__main__\":' or into a function")
