"""NV005 — determinism of fingerprinted encode paths.

The encode cache keys results by (machine, options) alone.  Any call
that reads ambient state — the module-level :mod:`random` functions and
their hidden global generator, wall-clock time, ``os.urandom``,
``uuid4`` — makes a "deterministic" result quietly depend on when and
where it ran, so a cache hit replays a value the current process could
never have produced.

Inside encode-path modules (``encoding/``, ``logic/``,
``constraints/``, ``symbolic/``, ``fsm/``, ``cache/``, ``baselines/``)
the rule flags:

* module-level :mod:`random` calls (``random.random()``,
  ``random.shuffle()``, ...) — randomness must flow through an
  explicitly seeded ``random.Random(seed)`` object;
* unseeded ``random.Random()`` constructions;
* wall-clock and entropy reads: ``time.time``, ``datetime.now``,
  ``os.urandom``, ``uuid.uuid1/4``, ``secrets.*``.

``time.monotonic``/``perf_counter`` are fine — budgets and perf
counters measure durations, which never enter a result.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    dotted_name,
    register,
)


@register
class Determinism(Rule):
    id = "NV005"
    title = "encode paths use only seedable randomness, no wall clock"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in config.nondeterministic_calls:
                yield ctx.finding(
                    self, node,
                    f"{dotted}() reads ambient state inside a "
                    f"fingerprinted encode path — the result would "
                    f"depend on when/where it ran, poisoning cache "
                    f"hits")
            elif dotted == "random.Random":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        self, node,
                        "random.Random() without a seed draws from OS "
                        "entropy — pass the seed from EncodeOptions so "
                        "identical options reproduce identical "
                        "results")
            elif dotted.startswith("random."):
                yield ctx.finding(
                    self, node,
                    f"{dotted}() uses the hidden module-level "
                    f"generator — thread a seeded random.Random "
                    f"object through instead")
