"""NV003 — atomic-write discipline in cache/journal/run-dir modules.

Readers of the disk cache and the batch journal assume every published
file is complete: :mod:`repro.cache.store` publishes with
tmp + ``fsync`` + ``os.replace``, the journal appends fsync'd lines.  A
raw ``open(path, "w")`` anywhere else in those modules can leave a torn
file that a concurrent reader (or a crash-resumed run) then trusts.

The rule flags every write-capable ``open`` (mode containing
``w``/``a``/``x``/``+``) and every ``Path.write_text``/``write_bytes``
in ``cache/`` and ``runner/`` modules unless it sits inside one of the
blessed publish helpers.  Blessed helpers that *truncate-write*
(``w``/``x`` modes) are additionally required to contain both an
``fsync`` call and an ``os.replace`` — removing either from, say,
``DiskStore.put`` is itself a finding.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    dotted_name,
    register,
)


def _open_mode(call: ast.Call) -> Optional[str]:
    """The constant mode string of an ``open`` call; ``"r"`` when
    omitted; ``None`` when not statically constant."""
    mode_expr: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode_expr = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode_expr = kw.value
    if mode_expr is None:
        return "r"
    if isinstance(mode_expr, ast.Constant) \
            and isinstance(mode_expr.value, str):
        return mode_expr.value
    return None


def _enclosing_qualnames(tree: ast.Module,
                         target: ast.AST) -> List[str]:
    """Qualified names of the function chain containing *target*,
    innermost last: ``["DiskStore.put"]`` or ``["write_manifest"]``."""
    path: List[str] = []

    def visit(node: ast.AST, stack: List[ast.AST]) -> bool:
        if node is target:
            path.extend(_stack_names(stack))
            return True
        for child in ast.iter_child_nodes(node):
            grew = isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef, ast.ClassDef))
            if grew:
                stack.append(node)
            found = visit(child, stack)
            if grew:
                stack.pop()
            if found:
                return True
        return False

    def _stack_names(stack: List[ast.AST]) -> List[str]:
        names = []
        prev_class: Optional[str] = None
        for node in stack:
            if isinstance(node, ast.ClassDef):
                prev_class = node.name
            else:
                assert isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef))
                if prev_class is not None:
                    names.append(f"{prev_class}.{node.name}")
                    prev_class = None
                else:
                    names.append(node.name)
        return names

    visit(tree, [])
    return path


def _function_has(fn: ast.AST, *, name: Optional[str] = None,
                  dotted: Optional[str] = None) -> bool:
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            if name is not None and call_name(node) == name:
                return True
            if dotted is not None and dotted_name(node.func) == dotted:
                return True
    return False


@register
class AtomicWrites(Rule):
    id = "NV003"
    title = "cache/journal writes go through atomic publish helpers"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        writes: List[Tuple[ast.Call, str]] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name == "open":
                mode = _open_mode(node)
                if mode is None:
                    writes.append((node, "?"))
                elif any(ch in mode for ch in "wax+"):
                    writes.append((node, mode))
            elif name in ("write_text", "write_bytes") \
                    and isinstance(node.func, ast.Attribute):
                writes.append((node, "w"))

        checked_blessed = set()
        for call, mode in writes:
            chain = _enclosing_qualnames(ctx.tree, call)
            blessed = next((q for q in chain
                            if q in config.atomic_writers
                            or q.split(".")[-1] in config.atomic_writers),
                           None)
            if blessed is None:
                where = chain[-1] if chain else "module level"
                yield ctx.finding(
                    self, call,
                    f"raw write (mode {mode!r}) in {where} — publish "
                    f"through an atomic helper "
                    f"({', '.join(config.atomic_writers)}) so readers "
                    f"never see a torn file")
                continue
            if mode == "?":
                yield ctx.finding(
                    self, call,
                    f"open() in blessed helper {blessed} has a "
                    f"non-constant mode — make the mode a literal so "
                    f"the write discipline stays checkable")
                continue
            if any(ch in mode for ch in "wx") \
                    and blessed not in checked_blessed:
                checked_blessed.add(blessed)
                fn = self._named_function(ctx.tree, blessed)
                if fn is None:
                    continue
                missing = []
                if not _function_has(fn, name="fsync"):
                    missing.append("fsync")
                if not _function_has(fn, dotted="os.replace"):
                    missing.append("os.replace")
                if missing:
                    yield ctx.finding(
                        self, fn,
                        f"blessed writer {blessed} truncate-writes but "
                        f"lacks {' and '.join(missing)} — its publishes "
                        f"are no longer atomic")

    @staticmethod
    def _named_function(tree: ast.Module,
                        qualname: str) -> Optional[ast.AST]:
        parts = qualname.split(".")
        scope: ast.AST = tree
        for i, part in enumerate(parts):
            found = None
            for node in ast.iter_child_nodes(scope):
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef,
                                     ast.ClassDef)) \
                        and node.name == part:
                    found = node
                    break
            if found is None:
                return None
            scope = found
        return scope
