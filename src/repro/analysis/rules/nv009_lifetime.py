"""NV009 — resource lifetimes dominate every exit.

Handles leak on the paths nobody tests: the exception between acquire
and the ``try`` that was supposed to release, the early return before
``close()``.  Under load the server's admission slots are the scarcest
resource in the repo — one leaked slot permanently shrinks capacity —
and leaked file handles/pipes accumulate until the OS says no.

Two sub-checks, driven by the binding layer:

* **factory bindings**: a name bound from a resource factory
  (``config.resource_factories``: ``open``, ``Popen``, ``Pipe``,
  sockets) must either be managed — bound by a ``with`` item, released
  by a ``close``/``terminate`` in a ``finally`` block — or visibly
  transfer ownership (returned, stored on an attribute, or passed to
  another call).  A binding that does none of these leaks on any
  exception between acquire and close;
* **slot acquire/release pairing**: an explicit ``.acquire()`` on a
  slot-like receiver (``config.slot_receivers``) must be paired with a
  ``finally`` that releases the same receiver, and that ``try`` must
  dominate everything after the acquire — either enclosing it or
  starting as the *immediately* following statement.  Any code between
  a successful acquire and the protecting ``try`` is a leak window.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    dotted_name,
    register,
)
from repro.analysis.dataflow import FunctionInfo, ModuleInfo, receiver_of


def _factory_terminal(value: ast.expr,
                      config: LintConfig) -> Optional[str]:
    if isinstance(value, ast.Call):
        name = call_name(value)
        if name in config.resource_factories:
            return name
    return None


def _is_slot_receiver(recv: Optional[ast.expr],
                      config: LintConfig) -> bool:
    if recv is None:
        return False
    dotted = dotted_name(recv) or ""
    return any(marker in dotted.lower() for marker in config.slot_receivers)


@register
class ResourceLifetime(Rule):
    id = "NV009"
    title = "acquired resources are released on every exit path"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        info = ctx.module_info()
        for fi in info.functions.values():
            yield from self._check_factory_bindings(ctx, info, fi, config)
            yield from self._check_slot_pairing(ctx, info, fi, config)

    # ------------------------------------------------------------------
    def _check_factory_bindings(self, ctx: FileContext, info: ModuleInfo,
                                fi: FunctionInfo,
                                config: LintConfig) -> Iterator[Finding]:
        for name, values in fi.bindings.items():
            for value in values:
                factory = _factory_terminal(value, config)
                if factory is None:
                    continue
                if isinstance(info.parent(value), ast.withitem):
                    continue  # with-managed
                if self._released_in_finally(info, fi, name, config):
                    continue
                if self._ownership_transferred(info, fi, name, value):
                    continue
                yield ctx.finding(
                    self, value,
                    f"{name!r} holds a {factory}() resource with no "
                    f"with-block, no finally-release, and no ownership "
                    f"transfer — any exception before close() leaks "
                    f"the handle")

    @staticmethod
    def _released_in_finally(info: ModuleInfo, fi: FunctionInfo,
                             name: str, config: LintConfig) -> bool:
        for node in fi.body_nodes():
            if not isinstance(node, ast.Try) or not node.finalbody:
                continue
            for stmt in node.finalbody:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Call) \
                            and call_name(sub) in config.release_methods:
                        recv = receiver_of(sub)
                        if isinstance(recv, ast.Name) and recv.id == name:
                            return True
        return False

    @staticmethod
    def _ownership_transferred(info: ModuleInfo, fi: FunctionInfo,
                               name: str, value: ast.expr) -> bool:
        """Returned, yielded, stored on an attribute/container, or
        passed as an argument to another call — someone else owns it."""
        for node in fi.body_nodes():
            if isinstance(node, (ast.Return, ast.Yield)) \
                    and node.value is not None:
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Name) and sub.id == name:
                        return True
            elif isinstance(node, ast.Assign):
                if any(not isinstance(t, ast.Name) for t in node.targets):
                    for sub in ast.walk(node.value):
                        if isinstance(sub, ast.Name) and sub.id == name:
                            return True
            elif isinstance(node, ast.Name) and node.id == name \
                    and isinstance(node.ctx, ast.Load) \
                    and info.inside_call_args(node):
                return True
        return False

    # ------------------------------------------------------------------
    def _check_slot_pairing(self, ctx: FileContext, info: ModuleInfo,
                            fi: FunctionInfo,
                            config: LintConfig) -> Iterator[Finding]:
        for call in fi.calls():
            if call_name(call) != "acquire":
                continue
            recv = receiver_of(call)
            if not _is_slot_receiver(recv, config):
                continue
            recv_dotted = dotted_name(recv)
            if not self._release_try_dominates(info, call, recv_dotted,
                                               config):
                yield ctx.finding(
                    self, call,
                    f"{recv_dotted}.acquire() is not dominated by a "
                    f"try/finally that releases it — code between the "
                    f"acquire and the protecting try can raise and "
                    f"leak the slot; enter the try immediately")

    def _release_try_dominates(self, info: ModuleInfo, call: ast.Call,
                               recv_dotted: Optional[str],
                               config: LintConfig) -> bool:
        spine = info.statement_spine(call)
        if not spine:
            return False
        # An enclosing try whose finally releases the receiver wins
        # outright; otherwise the release-try must be the statement
        # *immediately* after the outermost statement of the acquire.
        cur: Optional[ast.AST] = info.parent(call)
        while cur is not None and not isinstance(
                cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(cur, ast.Try) \
                    and self._finally_releases(cur, recv_dotted, config):
                return True
            cur = info.parent(cur)
        nxt = info.next_sibling(spine[-1])
        return isinstance(nxt, ast.Try) \
            and self._finally_releases(nxt, recv_dotted, config)

    @staticmethod
    def _finally_releases(node: ast.Try, recv_dotted: Optional[str],
                          config: LintConfig) -> bool:
        for stmt in node.finalbody:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call) \
                        and call_name(sub) in config.release_methods:
                    recv = receiver_of(sub)
                    if recv is not None \
                            and dotted_name(recv) == recv_dotted:
                        return True
        return False
