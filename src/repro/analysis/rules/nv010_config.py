"""NV010 — all ``NOVA_*`` environment reads go through the config.

``repro.config.RuntimeConfig`` is the single source of truth for
runtime knobs: it owns precedence (env < config file < config_scope),
parsing, validation, and the deprecation story for raw env vars.  A
module that reads ``NOVA_*`` from ``os.environ`` directly bypasses all
four — a ``$NOVA_CONFIG`` file silently stops applying to that knob,
and blank-string/parse handling drifts per call site.  That is exactly
the bug class PR 6 unified away; this rule keeps it away.

Reads are findings everywhere except the config module itself
(``config.config_modules``, matched on basename).  *Writes* are
allowed: ``os.environ[k] = v`` / ``pop`` are how knobs are handed to
spawned worker processes, where the environment is the only channel.
Key names resolve through the dataflow layer, so reading a module
constant (``ENV_CACHE = "NOVA_CACHE"``) does not hide the read.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator, List, Optional

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    dotted_name,
    register,
)

_READ_CALLS = ("os.environ.get", "environ.get", "os.getenv", "getenv")


@register
class ConfigDiscipline(Rule):
    id = "NV010"
    title = "NOVA_* environment reads only inside the config module"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        if Path(ctx.path).name in config.config_modules:
            return
        info = ctx.module_info()
        for node in ast.walk(ctx.tree):
            keys: List[ast.expr] = []
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted in _READ_CALLS and node.args:
                    keys = [node.args[0]]
            elif isinstance(node, ast.Subscript) \
                    and isinstance(node.ctx, ast.Load) \
                    and (dotted_name(node.value) or "").endswith("environ"):
                keys = [node.slice]
            if not keys:
                continue
            fi = info.enclosing_function(node)
            for key in keys:
                names = info.constant_strings_in(key, fi)
                hit = next((n for n in sorted(names)
                            if n.startswith(config.env_prefix)), None)
                if hit is not None:
                    yield ctx.finding(
                        self, node,
                        f"direct environment read of {hit!r} outside "
                        f"the config module — route it through a "
                        f"RuntimeConfig field/accessor so precedence, "
                        f"parsing, and $NOVA_CONFIG files keep "
                        f"applying")
