"""NV001 — cache-key completeness for :class:`EncodeOptions`.

The content-addressed encode cache is only sound if every options field
that can change the *result* participates in the fingerprint.  This
rule reads ``encoding/options.py`` and proves, statically, that every
dataclass field is either consumed by ``fingerprint_fields`` or listed
in the ``NON_FINGERPRINT_FIELDS`` whitelist of pure-policy fields.

Supported exclusion forms inside the ``fingerprint_fields``
comprehension::

    if f.name not in NON_FINGERPRINT_FIELDS      # the canonical form
    if f.name not in {"cache", "other"}          # inline literal
    if f.name != "cache"                         # single literal

Anything the rule cannot resolve is itself a finding: an invariant that
cannot be checked is as dangerous as one that is broken.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    register,
    string_elements,
)


def _dataclass_fields(cls: ast.ClassDef) -> List[Tuple[str, ast.stmt]]:
    out = []
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target,
                                                          ast.Name):
            out.append((stmt.target.id, stmt))
    return out


def _is_field_name(expr: ast.AST) -> bool:
    """``f.name`` for the comprehension variable ``f``."""
    return (isinstance(expr, ast.Attribute) and expr.attr == "name"
            and isinstance(expr.value, ast.Name))


def _exclusions(cond: ast.expr, module: ast.Module,
                whitelist_name: str) -> Optional[Set[str]]:
    """Field names a comprehension condition excludes, or ``None`` if
    the condition is not statically resolvable."""
    if isinstance(cond, ast.BoolOp) and isinstance(cond.op, ast.And):
        total: Set[str] = set()
        for part in cond.values:
            sub = _exclusions(part, module, whitelist_name)
            if sub is None:
                return None
            total |= sub
        return total
    if not (isinstance(cond, ast.Compare) and len(cond.ops) == 1
            and _is_field_name(cond.left)):
        return None
    op, comparator = cond.ops[0], cond.comparators[0]
    if isinstance(op, ast.NotEq) and isinstance(comparator, ast.Constant) \
            and isinstance(comparator.value, str):
        return {comparator.value}
    if isinstance(op, ast.NotIn):
        if isinstance(comparator, ast.Name):
            if comparator.id != whitelist_name:
                return None
            literal = _module_whitelist(module, whitelist_name)
            return set(literal) if literal is not None else None
        names = string_elements(comparator)
        return set(names) if names is not None else None
    return None


def _module_whitelist(module: ast.Module,
                      name: str) -> Optional[List[str]]:
    for stmt in module.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for tgt in targets:
            if isinstance(tgt, ast.Name) and tgt.id == name:
                assert value is not None
                return string_elements(value)
    return None


@register
class FingerprintCompleteness(Rule):
    id = "NV001"
    title = ("every EncodeOptions field enters the cache fingerprint "
             "or is whitelisted as pure policy")

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        cls = None
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) \
                    and node.name == config.options_class:
                cls = node
                break
        if cls is None:
            return
        fields = _dataclass_fields(cls)
        field_names = {name for name, _ in fields}

        method = None
        for stmt in cls.body:
            if isinstance(stmt, ast.FunctionDef) \
                    and stmt.name == config.fingerprint_method:
                method = stmt
                break
        if method is None:
            yield ctx.finding(
                self, cls,
                f"{config.options_class} has no "
                f"{config.fingerprint_method}() method — fields cannot "
                f"enter the cache key")
            return

        whitelist = _module_whitelist(ctx.tree,
                                      config.fingerprint_whitelist)
        excluded: Set[str] = set()
        resolvable = True
        comps = [n for n in ast.walk(method)
                 if isinstance(n, (ast.GeneratorExp, ast.ListComp,
                                   ast.SetComp))]
        if not comps:
            yield ctx.finding(
                self, method,
                f"{config.fingerprint_method} does not iterate the "
                f"dataclass fields — cannot verify cache-key "
                f"completeness")
            return
        for comp in comps:
            for gen in comp.generators:
                for cond in gen.ifs:
                    sub = _exclusions(cond, ctx.tree,
                                      config.fingerprint_whitelist)
                    if sub is None:
                        resolvable = False
                        yield ctx.finding(
                            self, cond,
                            "unresolvable field-exclusion condition in "
                            f"{config.fingerprint_method} — rewrite as "
                            f"'f.name not in "
                            f"{config.fingerprint_whitelist}'")
                    else:
                        excluded |= sub
        if not resolvable:
            return

        allowed = set(whitelist or ())
        for name in sorted(excluded - allowed):
            yield ctx.finding(
                self, method,
                f"field {name!r} is excluded from "
                f"{config.fingerprint_method} but not listed in "
                f"{config.fingerprint_whitelist} — a result-affecting "
                f"option outside the cache key serves stale encodings")
        for name in sorted(allowed - field_names):
            yield ctx.finding(
                self, cls,
                f"{config.fingerprint_whitelist} lists {name!r}, which "
                f"is not a field of {config.options_class}")
        for name in sorted(allowed - excluded):
            if name in field_names:
                yield ctx.finding(
                    self, method,
                    f"field {name!r} is whitelisted in "
                    f"{config.fingerprint_whitelist} but "
                    f"{config.fingerprint_method} still includes it — "
                    f"whitelist and exclusion disagree")
