"""NV004 — the error taxonomy is load-bearing.

The driver maps :class:`repro.errors.ReproError` subclasses to exit
codes, fallback decisions, and journal records; an exception outside
the taxonomy escapes all three.  Two checks, two scopes:

* **everywhere**: no bare ``except:``; a broad ``except
  Exception/BaseException`` must do something with the exception —
  re-raise, reference the bound name, or hand it to a journal/logger.
  Silently swallowed exceptions hide budget expiry and worker death.
* **pipeline stage modules** (the ``NV004-stages`` scope): every
  ``raise`` constructs a taxonomy class (``ReproError`` and friends,
  or a locally-defined subclass of one).  ``TypeError``/``ValueError``
  raised mid-pipeline bypasses the fallback chain and surfaces as a
  crash instead of a recorded, recoverable failure.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.core import (
    FileContext,
    Finding,
    LintConfig,
    Rule,
    call_name,
    path_matches,
    register,
)

_BROAD = ("Exception", "BaseException")
_SINK_CALLS = ("journal", "log", "warning", "error", "exception",
               "record", "append_event", "debug")


def _handler_exc_names(handler: ast.ExceptHandler) -> Set[str]:
    t = handler.type
    names: Set[str] = set()
    if isinstance(t, ast.Name):
        names.add(t.id)
    elif isinstance(t, ast.Attribute):
        names.add(t.attr)
    elif isinstance(t, ast.Tuple):
        for elt in t.elts:
            if isinstance(elt, ast.Name):
                names.add(elt.id)
            elif isinstance(elt, ast.Attribute):
                names.add(elt.attr)
    return names


def _handles_exception(handler: ast.ExceptHandler) -> bool:
    bound = handler.name
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return True
            if bound and isinstance(sub, ast.Name) and sub.id == bound:
                return True
            if isinstance(sub, ast.Call) \
                    and call_name(sub) in _SINK_CALLS:
                return True
    return False


def _local_bases(tree: ast.Module) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            bases: Set[str] = set()
            for b in node.bases:
                if isinstance(b, ast.Name):
                    bases.add(b.id)
                elif isinstance(b, ast.Attribute):
                    bases.add(b.attr)
            out[node.name] = bases
    return out


def _in_taxonomy(name: str, allowed: Set[str],
                 local: Dict[str, Set[str]],
                 seen: Optional[Set[str]] = None) -> bool:
    if name in allowed:
        return True
    if name not in local:
        return False
    seen = seen or set()
    if name in seen:
        return False
    seen.add(name)
    return any(_in_taxonomy(base, allowed, local, seen)
               for base in local[name])


@register
class ErrorTaxonomy(Rule):
    id = "NV004"
    title = "pipeline errors stay inside the ReproError taxonomy"

    def check(self, ctx: FileContext,
              config: LintConfig) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield ctx.finding(
                    self, node,
                    "bare 'except:' catches SystemExit and "
                    "KeyboardInterrupt — name the exception types, or "
                    "at minimum 'except Exception'")
                continue
            names = _handler_exc_names(node)
            if names & set(_BROAD) and not _handles_exception(node):
                yield ctx.finding(
                    self, node,
                    f"broad 'except {'/'.join(sorted(names))}' "
                    f"swallows the exception — re-raise it, journal "
                    f"it, or use the bound name")

        stage_pats = config.rule_paths.get("NV004-stages")
        if not stage_pats or not path_matches(ctx.display, stage_pats):
            return
        allowed = set(config.allowed_raises)
        local = _local_bases(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name: Optional[str] = None
            if isinstance(exc, ast.Call):
                name = call_name(exc)
            elif isinstance(exc, ast.Attribute):
                name = exc.attr
            elif isinstance(exc, ast.Name):
                # re-raising a caught/constructed object: allowed
                continue
            if name is None:
                continue
            if not _in_taxonomy(name, allowed, local):
                yield ctx.finding(
                    self, node,
                    f"stage module raises {name}, which is outside the "
                    f"ReproError taxonomy — the fallback chain and "
                    f"exit-code mapping cannot see it (use "
                    f"ConstraintError/EncodingInfeasible/... instead)")
