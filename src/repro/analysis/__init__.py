"""Static analysis for the NOVA pipeline: the ``nova lint`` subsystem.

The package exposes a small, stable surface: the engine entry point
:func:`lint_paths`, the configuration type :class:`LintConfig` (with
:func:`default_config` carrying this repository's invariants), and the
registry machinery for adding rules.  The shipped rules live in
:mod:`repro.analysis.rules` and self-register on import.
"""

# importing the rules package populates REGISTRY: each rule module
# self-registers on import
from repro.analysis import rules as _rules  # noqa: F401
from repro.analysis.core import (
    REGISTRY,
    FileContext,
    Finding,
    LintConfig,
    LintResult,
    Rule,
    default_config,
    instantiate_rules,
    lint_file,
    lint_paths,
    parse_suppressions,
    register,
)

__all__ = [
    "Finding",
    "FileContext",
    "LintConfig",
    "LintResult",
    "Rule",
    "REGISTRY",
    "default_config",
    "instantiate_rules",
    "lint_file",
    "lint_paths",
    "parse_suppressions",
    "register",
]
