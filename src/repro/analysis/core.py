"""The ``nova lint`` engine: findings, rules, suppressions, dispatch.

The linter is a thin deterministic pipeline: walk the requested paths,
parse each ``*.py`` file once with :mod:`ast`, hand the parse to every
registered rule whose path patterns match, and filter the resulting
:class:`Finding` stream through the file's suppression comments.

Rules are small classes registered with :func:`register`; each owns one
invariant id (``NV001``..) and reads its scope (which modules it
applies to, which helper names are blessed) from a :class:`LintConfig`
so the same rule code checks both the real tree and the test fixtures.

Suppression syntax, modelled on pylint's::

    do_risky_thing()  # nova-lint: disable=NV003 -- one-shot debug dump

The justification after ``--`` is mandatory: a disable comment without
one is itself reported (rule ``NV000``), so every suppression in the
tree documents *why* the invariant does not apply.  A standalone
suppression comment applies to the next line::

    # nova-lint: disable=NV002 -- generator; consumer charges per item
    for face in subfaces(region, level):
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
import fnmatch
import json
from pathlib import Path
import re
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.analysis.dataflow import ModuleInfo

#: Reported for malformed lint directives and unparseable files — the
#: meta-rule that keeps the other rules honest.
META_RULE = "NV000"

_RULE_ID = re.compile(r"^NV\d{3}$")
_DIRECTIVE = re.compile(
    r"#\s*nova-lint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# nova-lint: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: Optional[str]
    standalone: bool  # comment stands alone → applies to the next line

    def covers(self, rule: str) -> bool:
        return rule in self.rules or "all" in self.rules


def parse_suppressions(source: str) -> List[Suppression]:
    """Every lint directive in *source*, with its anchor line."""
    out: List[Suppression] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _DIRECTIVE.search(text)
        if m is None:
            continue
        rules = tuple(r.strip() for r in m.group("rules").split(",")
                      if r.strip())
        out.append(Suppression(
            line=lineno,
            rules=rules,
            reason=m.group("reason"),
            standalone=text.lstrip().startswith("#"),
        ))
    return out


@dataclass
class FileContext:
    """Everything a rule needs about one parsed source file."""

    path: Path
    display: str
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)
    _module_info: Optional["ModuleInfo"] = field(default=None, repr=False)

    def module_info(self) -> "ModuleInfo":
        """The file's dataflow facts, built once and shared by every
        rule that asks (see :mod:`repro.analysis.dataflow`)."""
        if self._module_info is None:
            self._module_info = ModuleInfo(self.tree)
        return self._module_info

    def finding(self, rule: "Rule", node: Union[ast.AST, int],
                message: str) -> Finding:
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(rule=rule.id, path=self.display, line=line,
                       col=col, message=message, severity=rule.severity)


# ----------------------------------------------------------------------
# rule registry
# ----------------------------------------------------------------------
class Rule:
    """Base class: one invariant, one id, one ``check`` pass per file."""

    id: str = "NV999"
    title: str = ""
    severity: str = "error"

    def patterns(self, config: "LintConfig") -> Optional[Tuple[str, ...]]:
        """Path patterns this rule applies to; ``None`` = every file."""
        return config.rule_paths.get(self.id)

    def applies(self, display: str, config: "LintConfig") -> bool:
        pats = self.patterns(config)
        return pats is None or path_matches(display, pats)

    def check(self, ctx: FileContext,
              config: "LintConfig") -> Iterator[Finding]:
        raise NotImplementedError


REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not _RULE_ID.match(cls.id):
        raise ValueError(f"bad rule id {cls.id!r}")
    if cls.id in REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls
    return cls


def path_matches(display: str, patterns: Sequence[str]) -> bool:
    """fnmatch *display* (posix form) against suffix *patterns*.

    Patterns are written relative to the package (``cache/*.py``); a
    file matches when the pattern matches its path or any suffix of it,
    so both ``src/repro/cache/store.py`` and a fixture at
    ``tests/fixtures/lint/bad/cache/store.py`` hit ``cache/*.py``.
    """
    posix = Path(display).as_posix()
    for pat in patterns:
        if fnmatch.fnmatch(posix, pat) or fnmatch.fnmatch(posix, "*/" + pat):
            return True
    return False


# ----------------------------------------------------------------------
# configuration: the repo's contracts, in one place
# ----------------------------------------------------------------------
@dataclass
class LintConfig:
    """Scopes and blessed names consumed by the rules.

    The default instance encodes this repository's invariants; tests
    construct narrower configs to point rules at fixture trees.
    """

    #: rule id -> path patterns (suffix fnmatch, see :func:`path_matches`)
    rule_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    # --- NV001 ---------------------------------------------------------
    options_class: str = "EncodeOptions"
    fingerprint_method: str = "fingerprint_fields"
    fingerprint_whitelist: str = "NON_FINGERPRINT_FIELDS"

    # --- NV002 ---------------------------------------------------------
    #: attribute/function names that count as a budget tick
    budget_calls: Tuple[str, ...] = (
        "charge", "check_time", "expired", "tick", "_charge",
    )
    #: call names cheap enough that a loop of only these needs no tick
    cheap_calls: Tuple[str, ...] = (
        # builtins
        "len", "range", "min", "max", "sum", "abs", "all", "any", "zip",
        "sorted", "enumerate", "reversed", "isinstance", "hasattr",
        "getattr", "setattr", "repr", "str", "int", "float", "bool",
        "round", "iter", "next", "print", "id", "format",
        # container plumbing
        "append", "add", "pop", "get", "items", "keys", "values", "sort",
        "extend", "remove", "insert", "index", "count", "copy", "update",
        "discard", "clear", "popitem", "move_to_end", "setdefault",
        "list", "dict", "set", "tuple", "frozenset",
        # strings
        "join", "split", "strip", "startswith", "endswith", "replace",
        # O(1) bit-twiddling on cubes/faces (repro.logic / constraints)
        "bit_length", "bit_count", "is_empty", "intersects", "contains",
        "contains_code", "intersect", "minterm_count", "literal",
        "min_level", "cardinality", "_is_singleton",
    )

    # --- NV003 ---------------------------------------------------------
    #: qualified function names allowed to open files for writing
    atomic_writers: Tuple[str, ...] = (
        "DiskStore.put",       # tmp + fsync + os.replace
        "write_manifest",      # tmp + fsync + os.replace
        "Journal.__init__",    # append-only handle; append() fsyncs
        "Journal._acquire_writer_lock",  # flock sidecar, no data writes
        "repair",              # in-place truncate/patch + fsync
        "LeaseDir._publish_new",  # tmp + fsync + os.link (excl create)
        "LeaseDir._replace",      # tmp + fsync + os.replace
    )

    # --- NV004 ---------------------------------------------------------
    #: exception classes stage modules may raise (plus local subclasses)
    allowed_raises: Tuple[str, ...] = (
        "ReproError", "ParseError", "ConstraintError", "BudgetExhausted",
        "EncodingInfeasible", "VerificationError", "BudgetExceeded",
        "ServiceError", "OverloadError", "DeadlineExceeded",
        "NotImplementedError", "AssertionError",
    )

    # --- NV005 ---------------------------------------------------------
    #: fully-dotted calls that make a result depend on ambient state
    nondeterministic_calls: Tuple[str, ...] = (
        "time.time", "time.time_ns", "datetime.now", "datetime.utcnow",
        "datetime.today", "datetime.datetime.now",
        "datetime.datetime.utcnow", "datetime.datetime.today",
        "date.today", "os.urandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.randbits",
        "secrets.choice",
    )

    # --- NV006 ---------------------------------------------------------
    #: call names allowed in module-level assignments of worker modules
    spawn_safe_factories: Tuple[str, ...] = (
        "frozenset", "tuple", "dict", "set", "list", "TypeVar",
        "namedtuple", "compile",
    )

    # --- NV007 ---------------------------------------------------------
    #: receiver-name substrings that mark a lease/claim object; calls
    #: like ``leases.acquire(...)`` / ``leases.heartbeat(...)`` return
    #: Optional and must be None-guarded before use
    lease_receivers: Tuple[str, ...] = ("lease",)
    #: class names whose instances are fsync'd journal writers — their
    #: ``.append`` rows are the fenced durable records
    journal_classes: Tuple[str, ...] = ("Journal",)
    #: path fragments that identify shard/manifest files; raw writes
    #: whose argument dataflow contains one must go through a blessed
    #: atomic writer (shares ``atomic_writers`` with NV003)
    shard_markers: Tuple[str, ...] = (".jsonl", "manifest.json")

    # --- NV008 ---------------------------------------------------------
    #: fully-dotted calls that block the event loop
    blocking_calls: Tuple[str, ...] = (
        "time.sleep", "subprocess.run", "subprocess.call",
        "subprocess.check_call", "subprocess.check_output", "os.system",
        "socket.create_connection",
    )
    #: terminal names of awaited calls that wait on external work
    #: (peers, pipes, sockets) and therefore need a timeout/deadline
    external_awaits: Tuple[str, ...] = (
        "drain", "wait_closed", "readuntil", "readexactly", "readline",
        "recv", "accept", "connect", "sendall",
    )

    # --- NV009 ---------------------------------------------------------
    #: call names that hand out resources needing an owner
    resource_factories: Tuple[str, ...] = (
        "open", "Pipe", "Popen", "socket", "socketpair",
        "create_connection",
    )
    #: receiver-name substrings marking slot/lock-like objects whose
    #: ``.acquire()`` must be paired with a dominating ``.release()``
    slot_receivers: Tuple[str, ...] = ("slot", "sem", "lock", "mutex")
    #: method names that end a resource's lifetime in a ``finally``
    release_methods: Tuple[str, ...] = (
        "close", "release", "terminate", "kill",
    )

    # --- NV010 ---------------------------------------------------------
    #: modules allowed to read NOVA_* environment variables (the
    #: RuntimeConfig choke point)
    config_modules: Tuple[str, ...] = ("config.py",)
    #: environment-variable prefix the config contract owns
    env_prefix: str = "NOVA_"


def default_config() -> LintConfig:
    """The shipping configuration: this repository's invariants."""
    return LintConfig(rule_paths={
        # options.py is the historical scope; config.py and bench/
        # carry the same contract (frozen dataclasses whose fields feed
        # fingerprints / persisted records must declare exclusions)
        "NV001": ("encoding/options.py", "config.py", "bench/*.py"),
        "NV002": (
            "encoding/iexact.py",
            "encoding/ihybrid.py",
            "logic/espresso.py",
            "logic/urp.py",
        ),
        "NV003": ("cache/*.py", "runner/*.py"),
        # NV004's bare/broad-except checks run everywhere; the
        # raise-taxonomy check additionally needs the stage scope below.
        # config.py and bench/ are in scope so runtime-config resolution
        # and benchmark records never read ambient wall-clock/randomness:
        # timestamps reach bench records as *parameters* (the CLI reads
        # the clock), which is also what makes the timer fake-clockable.
        "NV005": (
            "encoding/*.py", "logic/*.py", "constraints/*.py",
            "symbolic/*.py", "fsm/*.py", "cache/*.py", "baselines/*.py",
            "config.py", "bench/*.py",
        ),
        # worker.py because the batch runner spawns it; the server
        # modules because ``nova serve`` spawns workers too, and every
        # module imported on that path must stay import-clean
        "NV006": ("runner/worker.py", "server/*.py"),
        # the fencing layer lives in runner/ (lease.py, journal.py,
        # batch.py); NV007 guards claim/heartbeat discipline there
        "NV007": ("runner/*.py",),
        # everything that runs on (or is called from) the event loop
        "NV008": ("server/*.py",),
        # subsystems that hold OS resources: handles, pipes, slots
        "NV009": ("server/*.py", "runner/*.py", "cache/*.py"),
        # NV010 runs everywhere: the whole point is that *no* module
        # outside config.py reads NOVA_* (config_modules exempts it)
        # scope key consumed by NV004 for its raise-taxonomy half
        "NV004-stages": (
            "encoding/iexact.py", "encoding/igreedy.py",
            "encoding/ihybrid.py", "encoding/iohybrid.py",
            "encoding/onehot.py", "encoding/osym.py",
            "encoding/out_encoder.py", "encoding/project.py",
            "encoding/verify.py", "encoding/base.py",
            "fsm/kiss.py", "fsm/symbolic_cover.py",
            "symbolic/*.py", "server/*.py",
        ),
    })


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def call_name(call: ast.Call) -> Optional[str]:
    """Terminal name of a call: ``foo()`` and ``a.b.foo()`` → ``foo``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def dotted_name(expr: ast.AST) -> Optional[str]:
    """``a.b.c`` rendered as a string, or ``None`` for non-name chains."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def string_elements(node: ast.AST) -> Optional[List[str]]:
    """The string constants of a set/tuple/list literal (possibly
    wrapped in ``frozenset(...)``/``set(...)``); ``None`` if anything in
    it is not a plain string."""
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple") \
            and len(node.args) == 1 and not node.keywords:
        return string_elements(node.args[0])
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        out = []
        for elt in node.elts:
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                out.append(elt.value)
            else:
                return None
        return out
    return None


def walk_skipping(node: ast.AST,
                  skip: Tuple[type, ...]) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into *skip* node types."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, skip):
            continue
        yield child
        yield from walk_skipping(child, skip)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------
def iter_python_files(paths: Sequence[Union[str, Path]]) -> Iterator[Path]:
    """Every ``*.py`` under *paths*, deterministic order, caches skipped."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for f in sorted(p.rglob("*.py")):
                if "__pycache__" not in f.parts:
                    yield f
        else:
            yield p


def instantiate_rules(
    only: Optional[Sequence[str]] = None,
) -> List[Rule]:
    """Fresh instances of every registered rule (or the *only* subset)."""
    # rule modules self-register on import
    from repro.analysis import rules as _rules  # noqa: F401
    ids = sorted(REGISTRY) if only is None else list(only)
    out = []
    for rule_id in ids:
        if rule_id not in REGISTRY:
            raise KeyError(f"unknown rule {rule_id!r}; "
                           f"available: {', '.join(sorted(REGISTRY))}")
        out.append(REGISTRY[rule_id]())
    return out


@dataclass
class LintResult:
    """Aggregate outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: int = 0
    files: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_dict(self) -> Dict[str, Any]:
        counts: Dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "ok": self.ok,
            "files": self.files,
            "suppressed": self.suppressed,
            "counts": counts,
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def _decorated_statement_lines(tree: ast.Module, line: int) -> List[int]:
    """When *line* starts a decorator list, every line the decorated
    statement spans: each decorator's line plus the ``def``/``class``
    line itself.  Empty when *line* is not a decorator."""
    for node in ast.walk(tree):
        decorators = getattr(node, "decorator_list", None)
        if not decorators:
            continue
        if decorators[0].lineno <= line <= node.lineno:
            lines = [d.lineno for d in decorators]
            lines.append(node.lineno)
            return lines
    return []


def _suppression_targets(ctx: FileContext) -> Dict[int, Suppression]:
    """Line -> suppression map.  An inline directive covers its own
    line; a standalone one covers the next *code* line, so multi-line
    justification comments may continue below the directive.  When that
    next code line opens a decorator list, the directive covers the
    whole decorated statement (every decorator line and the ``def``),
    not just the first ``@`` line."""
    lines = ctx.source.splitlines()
    out: Dict[int, Suppression] = {}
    for sup in ctx.suppressions:
        out.setdefault(sup.line, sup)
        if not sup.standalone:
            continue
        for idx in range(sup.line, len(lines)):
            text = lines[idx].strip()
            if text and not text.startswith("#"):
                out.setdefault(idx + 1, sup)
                if text.startswith("@"):
                    for covered in _decorated_statement_lines(
                            ctx.tree, idx + 1):
                        out.setdefault(covered, sup)
                break
    return out


def lint_file(path: Path, rules: Sequence[Rule], config: LintConfig,
              display: Optional[str] = None) -> Tuple[List[Finding], int]:
    """All (finding, suppressed-count) for one file."""
    shown = display if display is not None else str(path)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=shown)
    except (OSError, SyntaxError, ValueError) as exc:
        return [Finding(rule=META_RULE, path=shown,
                        line=getattr(exc, "lineno", None) or 1, col=0,
                        message=f"could not parse: {exc}")], 0
    ctx = FileContext(path=path, display=shown, source=source, tree=tree,
                      suppressions=parse_suppressions(source))
    raw: List[Finding] = []
    for rule in rules:
        if rule.applies(shown, config):
            raw.extend(rule.check(ctx, config))
    kept: List[Finding] = []
    suppressed = 0
    targets = _suppression_targets(ctx)
    for f in raw:
        sup = targets.get(f.line)
        if sup is not None and sup.covers(f.rule) and sup.reason:
            suppressed += 1
            continue
        kept.append(f)
    # malformed directives are findings of their own, wherever they are
    for sup in ctx.suppressions:
        if not sup.reason:
            kept.append(Finding(
                rule=META_RULE, path=shown, line=sup.line, col=0,
                message="suppression without a justification: append "
                        "' -- reason' to the disable directive"))
        for rule_id in sup.rules:
            if rule_id != "all" and not _RULE_ID.match(rule_id):
                kept.append(Finding(
                    rule=META_RULE, path=shown, line=sup.line, col=0,
                    message=f"unknown rule id {rule_id!r} in suppression"))
    return kept, suppressed


def lint_paths(
    paths: Sequence[Union[str, Path]],
    rules: Optional[Sequence[Rule]] = None,
    config: Optional[LintConfig] = None,
    display_root: Optional[Path] = None,
) -> LintResult:
    """Lint every python file under *paths*; the public entry point."""
    cfg = config if config is not None else default_config()
    active = list(rules) if rules is not None else instantiate_rules()
    result = LintResult()
    for f in iter_python_files(paths):
        display = None
        if display_root is not None:
            try:
                display = f.relative_to(display_root).as_posix()
            except ValueError:
                display = None
        findings, suppressed = lint_file(f, active, cfg, display=display)
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files += 1
    result.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return result
