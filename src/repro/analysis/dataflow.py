"""CFG-lite dataflow queries for the lint rules.

The per-node rules of PR 5 match one statement at a time; the
concurrency rules (NV007–NV010) need to answer questions *about* the
code around a node: which function contains it, what a name was bound
to, whether a guard follows an acquisition, which synchronous functions
a coroutine can reach.  This module computes one :class:`ModuleInfo`
per parsed file (cached on the :class:`~repro.analysis.core.FileContext`)
holding exactly the approximations those questions need:

* a **parent map** and per-function statement tree, so any node can be
  placed in its function, its statement spine, and its sibling order;
* a **symbol-table / reaching-definitions layer**: per-function name →
  the value expressions ever assigned to it (flow-insensitive, which is
  sound for the "does this name ever hold a Journal / a file handle"
  questions the rules ask), plus module-level string constants so a
  ``MANIFEST_NAME``-style indirection still resolves;
* **in-module call resolution**: ``foo()`` to the module function
  ``foo``, ``self.bar()`` to a method of the enclosing class — and only
  ``Call.func`` positions count, so a function *referenced* as an
  argument (``asyncio.to_thread(self._run_blocking, …)``) is correctly
  not an edge;
* **region tracking** for ``with``/``try`` bodies and loops, plus the
  straight-line dominance approximation (statement order within a
  block, guard-clause detection) that stands in for a full CFG.

Everything here is deliberately conservative: when a question cannot be
answered statically the answer is "unknown", and each rule decides
whether unknown means silence (no false positives) or a finding (an
invariant that cannot be checked).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "FunctionInfo",
    "ModuleInfo",
    "receiver_of",
]

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_NODES = _FUNC_NODES + (ast.ClassDef,)


def receiver_of(call: ast.Call) -> Optional[ast.expr]:
    """The object a method call is invoked on (``x`` in ``x.m()``)."""
    if isinstance(call.func, ast.Attribute):
        return call.func.value
    return None


@dataclass
class FunctionInfo:
    """One function (or method) and its locally-derivable facts."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    name: str
    qualname: str  # "Class.method" or "function" or "outer.inner"
    class_name: Optional[str]
    is_async: bool
    #: name -> value expressions ever assigned to it (reaching defs,
    #: flow-insensitive), including ``with … as name`` items
    bindings: Dict[str, List[ast.expr]] = field(default_factory=dict)
    #: parameter name -> annotation node (None when unannotated)
    params: Dict[str, Optional[ast.expr]] = field(default_factory=dict)

    def body_nodes(self) -> Iterator[ast.AST]:
        """Every node of this function, not descending into nested
        function/class definitions (their bodies have their own info)."""
        stack: List[ast.AST] = list(self.node.body)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, _SCOPE_NODES):
                    continue
                stack.append(child)

    def calls(self) -> Iterator[ast.Call]:
        for node in self.body_nodes():
            if isinstance(node, ast.Call):
                yield node

    def binds_from_call(self, name: str,
                        callee_names: Sequence[str]) -> bool:
        """Was *name* ever bound to the result of one of *callee_names*?

        Matches the terminal name of the bound call (``Journal(p)`` and
        ``journal_mod.Journal(p)`` both bind from ``Journal``).
        """
        for value in self.bindings.get(name, ()):
            if isinstance(value, ast.Call):
                func = value.func
                terminal = (func.id if isinstance(func, ast.Name)
                            else func.attr
                            if isinstance(func, ast.Attribute) else None)
                if terminal in callee_names:
                    return True
        return False


class ModuleInfo:
    """Dataflow facts for one parsed module, built on first query."""

    def __init__(self, tree: ast.Module) -> None:
        self.tree = tree
        self._parents: Dict[int, ast.AST] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module-level NAME = "constant" bindings
        self.constants: Dict[str, str] = {}
        self._by_node: Dict[int, FunctionInfo] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[id(child)] = node
        for stmt in self.tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and isinstance(stmt.value, ast.Constant) \
                    and isinstance(stmt.value.value, str):
                self.constants[stmt.targets[0].id] = stmt.value.value
        self._collect_functions(self.tree, prefix="", class_name=None)

    def _collect_functions(self, scope: ast.AST, prefix: str,
                           class_name: Optional[str]) -> None:
        for node in ast.iter_child_nodes(scope):
            if isinstance(node, ast.ClassDef):
                self._collect_functions(node, prefix, class_name=node.name)
            elif isinstance(node, _FUNC_NODES):
                qual = (f"{class_name}.{node.name}" if class_name
                        else f"{prefix}{node.name}" if prefix
                        else node.name)
                info = FunctionInfo(
                    node=node, name=node.name, qualname=qual,
                    class_name=class_name,
                    is_async=isinstance(node, ast.AsyncFunctionDef))
                self._index_function(info)
                self.functions[qual] = info
                self._by_node[id(node)] = info
                # nested defs get "outer.inner" qualnames
                self._collect_functions(node, prefix=f"{qual}.",
                                        class_name=None)

    def _index_function(self, info: FunctionInfo) -> None:
        args = info.node.args
        for a in (list(args.posonlyargs) + list(args.args)
                  + list(args.kwonlyargs)
                  + ([args.vararg] if args.vararg else [])
                  + ([args.kwarg] if args.kwarg else [])):
            info.params[a.arg] = a.annotation
        for node in info.body_nodes():
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    self._bind_target(info, target, node.value)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                self._bind_target(info, node.target, node.value)
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None:
                        self._bind_target(info, item.optional_vars,
                                          item.context_expr)

    @staticmethod
    def _bind_target(info: FunctionInfo, target: ast.AST,
                     value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            info.bindings.setdefault(target.id, []).append(value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    info.bindings.setdefault(elt.id, []).append(value)

    # ------------------------------------------------------------------
    # structural queries
    # ------------------------------------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(id(node))

    def enclosing_function(self, node: ast.AST) -> Optional[FunctionInfo]:
        """The innermost function whose body contains *node*."""
        cur = self.parent(node)
        while cur is not None:
            info = self._by_node.get(id(cur))
            if info is not None:
                return info
            cur = self.parent(cur)
        return None

    def statement_of(self, node: ast.AST) -> Optional[ast.stmt]:
        """The innermost statement containing *node*."""
        cur: Optional[ast.AST] = node
        while cur is not None and not isinstance(cur, ast.stmt):
            cur = self.parent(cur)
        return cur if isinstance(cur, ast.stmt) else None

    def statement_spine(self, node: ast.AST) -> List[ast.stmt]:
        """Ancestor statements of *node*, innermost first, up to (not
        including) the enclosing function body."""
        out: List[ast.stmt] = []
        cur: Optional[ast.AST] = node
        while cur is not None and not isinstance(cur, _FUNC_NODES):
            if isinstance(cur, ast.stmt):
                out.append(cur)
            cur = self.parent(cur)
        return out

    def next_sibling(self, stmt: ast.stmt) -> Optional[ast.stmt]:
        """The statement following *stmt* in its containing block."""
        parent = self.parent(stmt)
        if parent is None:
            return None
        for fname in ("body", "orelse", "finalbody"):
            block = getattr(parent, fname, None)
            if isinstance(block, list) and stmt in block:
                idx = block.index(stmt)
                if idx + 1 < len(block):
                    return block[idx + 1]
                return None
        return None

    def enclosing_loop(self, node: ast.AST,
                       outermost: bool = True) -> Optional[ast.AST]:
        """The (outermost) ``for``/``while`` loop containing *node*
        within its function, or ``None``."""
        found: Optional[ast.AST] = None
        cur = self.parent(node)
        while cur is not None and not isinstance(cur, _FUNC_NODES):
            if isinstance(cur, (ast.For, ast.AsyncFor, ast.While)):
                found = cur
                if not outermost:
                    return found
            cur = self.parent(cur)
        return found

    def inside_call_args(self, node: ast.AST) -> bool:
        """Is *node* inside the argument list of some call?  (Function
        references passed as arguments are *not* invoked here.)"""
        cur = node
        parent = self.parent(cur)
        while parent is not None and not isinstance(parent, ast.stmt):
            if isinstance(parent, ast.Call) and cur is not parent.func:
                return True
            cur, parent = parent, self.parent(parent)
        return False

    # ------------------------------------------------------------------
    # dataflow queries
    # ------------------------------------------------------------------
    def constant_strings_in(self, expr: ast.AST,
                            fi: Optional[FunctionInfo] = None
                            ) -> Set[str]:
        """Every string constant reachable in *expr*: literals,
        f-string pieces, and names resolving to module constants or
        (one step of) local constant bindings."""
        out: Set[str] = set()
        for node in ast.walk(expr):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                out.add(node.value)
            elif isinstance(node, ast.Name):
                if node.id in self.constants:
                    out.add(self.constants[node.id])
                elif fi is not None:
                    for value in fi.bindings.get(node.id, ()):
                        if value is not expr:
                            for sub in ast.walk(value):
                                if isinstance(sub, ast.Constant) \
                                        and isinstance(sub.value, str):
                                    out.add(sub.value)
        return out

    def none_guard_follows(self, stmt: ast.stmt, name: str) -> bool:
        """Does the statement after *stmt* guard *name* against None?

        Recognized forms (the straight-line dominance approximation)::

            if name is None: <ends in continue/return/raise/break>
            if name is not None: <uses inside>
            if name: <uses inside>
        """
        nxt = self.next_sibling(stmt)
        if not isinstance(nxt, ast.If):
            return False
        test = nxt.test
        if isinstance(test, ast.Compare) and len(test.ops) == 1 \
                and isinstance(test.left, ast.Name) \
                and test.left.id == name \
                and len(test.comparators) == 1 \
                and isinstance(test.comparators[0], ast.Constant) \
                and test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.Is):
                # `if name is None:` must leave the block — or carry an
                # else branch, confining the success path there
                if nxt.orelse:
                    return True
                tail = nxt.body[-1] if nxt.body else None
                return isinstance(tail, (ast.Continue, ast.Return,
                                         ast.Raise, ast.Break))
            if isinstance(test.ops[0], ast.IsNot):
                return True
        if isinstance(test, ast.Name) and test.id == name:
            return True
        return False

    # ------------------------------------------------------------------
    # call graph / coroutine reachability
    # ------------------------------------------------------------------
    def resolve_call(self, fi: FunctionInfo,
                     call: ast.Call) -> Optional[FunctionInfo]:
        """The in-module function a call invokes, when resolvable.

        ``foo()`` resolves to a module-level function ``foo``;
        ``self.bar()`` resolves to method ``bar`` of *fi*'s class.
        Anything else (imports, attributes of other objects) is None.
        """
        func = call.func
        if isinstance(func, ast.Name):
            target = self.functions.get(func.id)
            if target is not None and target.class_name is None:
                return target
            return None
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self" and fi.class_name:
            return self.functions.get(f"{fi.class_name}.{func.attr}")
        return None

    def coroutine_reachable(self) -> Set[str]:
        """Qualnames of every function whose body can run on the event
        loop: coroutines themselves plus synchronous functions they
        (transitively) call within this module.  Functions only ever
        *referenced* (passed to ``asyncio.to_thread``/executors) are
        not reachable through that reference.
        """
        reachable: Set[str] = set()
        frontier = [fi for fi in self.functions.values() if fi.is_async]
        for fi in frontier:
            reachable.add(fi.qualname)
        while frontier:
            fi = frontier.pop()
            for call in fi.calls():
                target = self.resolve_call(fi, call)
                if target is None or target.qualname in reachable:
                    continue
                if target.is_async:
                    continue  # already a root
                reachable.add(target.qualname)
                frontier.append(target)
        return reachable
