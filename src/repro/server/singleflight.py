"""Single-flight coalescing: one computation per in-flight fingerprint.

The PR 4 cache fingerprint makes every encode request content-addressed,
so two concurrent requests with the same fingerprint are *the same
work*.  :class:`SingleFlight` maps fingerprint -> the one running
computation; the first requester (the *leader*) launches it, everyone
else attaches to the same :class:`asyncio.Task`.

Cancellation safety is the point of the design: the computation runs in
its **own task**, never in any requester's handler task, and waiters
await it through :func:`asyncio.shield`.  A client disconnect cancels
that client's handler — the shield absorbs the cancellation and the
shared work keeps running for every other waiter.  Even when the *last*
waiter detaches the computation is left to finish: its result lands in
the encode cache, so the work is never wasted, and an abandoned-then-
retried request becomes a warm hit instead of a second cold run.  (The
worker pool's hard wall-clock kill bounds how long an abandoned
computation can hold a slot.)
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Optional

from repro.errors import ServiceError


class SharedCall:
    """One in-flight computation and its attachment count."""

    __slots__ = ("key", "task", "waiters")

    def __init__(self, key: str, task: "asyncio.Task[Any]") -> None:
        self.key = key
        self.task = task
        self.waiters = 0


class SingleFlight:
    """The in-flight map.  All methods run on the event loop thread."""

    def __init__(self) -> None:
        self._calls: Dict[str, SharedCall] = {}

    def __len__(self) -> int:
        return len(self._calls)

    def lookup(self, key: str) -> Optional[SharedCall]:
        """The in-flight call for *key*, if any."""
        return self._calls.get(key)

    def launch(self, key: str,
               factory: Callable[[], Awaitable[Any]]) -> SharedCall:
        """Start the shared computation for *key* in its own task.

        The map entry is installed synchronously — before the factory's
        coroutine runs a single step — so every later request in the
        same event-loop tick already coalesces onto it.
        """
        if key in self._calls:
            raise ServiceError(
                f"fingerprint {key[:16]} already in flight")
        task = asyncio.get_running_loop().create_task(
            factory(), name=f"encode:{key[:16]}")
        call = SharedCall(key, task)
        self._calls[key] = call
        task.add_done_callback(lambda _t: self._calls.pop(key, None))
        return call

    async def wait(self, call: SharedCall) -> Any:
        """Await *call*'s result as one (cancellable) waiter.

        Cancelling this coroutine detaches only this waiter; the shared
        task is shielded and keeps running for the others.  The shared
        task's exception (e.g. an ``OverloadError`` the leader hit at
        admission) propagates to every attached waiter identically.
        """
        call.waiters += 1
        try:
            return await asyncio.shield(call.task)
        finally:
            call.waiters -= 1
