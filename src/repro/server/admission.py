"""Admission control: a bounded waiting room in front of the workers.

Cold encodes are expensive (a spawned process each); unbounded
acceptance under a burst would stack up queued work far beyond any
client's patience and take the event loop down with it.  The controller
enforces two numbers:

* ``workers`` — cold computations actually running (worker processes);
* ``queue_limit`` — leaders allowed to *wait* for a worker slot.

A request that would push the waiting line past ``queue_limit`` is
refused immediately with :class:`~repro.errors.OverloadError` (HTTP
429) and a ``Retry-After`` estimate derived from the observed service
time — refusal is O(1) and never blocks, which is what keeps 429s
prompt while the pool is saturated.  Warm (cache-hit) traffic never
enters the controller at all: the service answers it before admission,
which is the load-shed path.

Deadlines hold in the queue too: a leader whose wall-clock deadline
expires while waiting gives up its place and fails with
:class:`~repro.errors.DeadlineExceeded` rather than occupying a slot
it can no longer use.
"""

from __future__ import annotations

import asyncio
import time
from typing import AsyncIterator, Optional

from contextlib import asynccontextmanager

from repro.errors import DeadlineExceeded, OverloadError, ServiceError
from repro.server.stats import ServerStats
from repro.testing import faults


class AdmissionController:
    """Bounded queue + worker-slot semaphore with a Retry-After model."""

    def __init__(self, workers: int, queue_limit: int,
                 stats: Optional[ServerStats] = None) -> None:
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if queue_limit < 0:
            raise ServiceError(
                f"queue_limit must be >= 0, got {queue_limit}")
        self.workers = workers
        self.queue_limit = queue_limit
        self.stats = stats
        self._slots = asyncio.Semaphore(workers)
        self._running = 0
        self._queued = 0
        # exponential moving average of cold service time, seeding the
        # Retry-After estimate; starts at 1s so the first refusals are
        # already sane
        self._avg_service = 1.0

    # ------------------------------------------------------------------
    @property
    def queued(self) -> int:
        return self._queued

    @property
    def running(self) -> int:
        return self._running

    @property
    def saturated(self) -> bool:
        """True while new cold work would be refused."""
        return self._queued + self._running >= self.workers + self.queue_limit

    def retry_after(self) -> float:
        """Seconds until capacity plausibly frees up.

        The whole waiting line plus the running jobs must drain through
        ``workers`` slots; each job takes about the moving-average
        service time.  Clamped to [1, 120] — precise backoff matters
        less than being monotone in queue depth.
        """
        depth = self._queued + self._running
        estimate = (depth / max(1, self.workers)) * self._avg_service
        return min(120.0, max(1.0, estimate))

    def observe_service_time(self, seconds: float) -> None:
        """Fold one completed cold computation into the EMA."""
        self._avg_service += 0.2 * (seconds - self._avg_service)

    # ------------------------------------------------------------------
    @asynccontextmanager
    async def admit(self, deadline: Optional[float] = None,
                    machine: str = "") -> AsyncIterator[float]:
        """Hold a worker slot for the block; yields the queue wait.

        Raises :class:`OverloadError` synchronously when the waiting
        line is full, :class:`DeadlineExceeded` when *deadline* (an
        absolute ``time.monotonic()`` instant) passes before a slot
        frees up.
        """
        faults.trip("admit", machine=machine)
        # capacity check on *admitted* work (waiting + running), not on
        # the waiting line alone: ``_running`` is bumped only after the
        # semaphore acquire completes, so a same-tick burst would
        # otherwise slip past a free-slot check before anyone acquires.
        # queue_limit=0 thus means "workers slots, nobody ever waits".
        if self._queued + self._running >= self.workers + self.queue_limit:
            if self.stats is not None:
                self.stats.queue_rejects += 1
            raise OverloadError(
                "cold-path queue is full",
                retry_after=self.retry_after(),
                queued=self._queued, limit=self.queue_limit,
                stage="admit", machine=machine or None)
        self._queued += 1
        t0 = time.monotonic()
        try:
            timeout = None
            if deadline is not None:
                timeout = max(0.0, deadline - t0)
            try:
                await asyncio.wait_for(self._slots.acquire(),
                                       timeout=timeout)
            except (asyncio.TimeoutError, TimeoutError):
                raise DeadlineExceeded(
                    "deadline expired while queued for a worker slot",
                    deadline=timeout, stage="admit",
                    machine=machine or None) from None
        finally:
            self._queued -= 1
        # The slot is ours from here on: enter the releasing try before
        # touching anything that can raise (stats hooks), or an
        # exception in the gap leaks the slot and shrinks capacity for
        # the life of the process.
        try:
            wait = time.monotonic() - t0
            if self.stats is not None:
                self.stats.record_queue_wait(wait)
            self._running += 1
            try:
                yield wait
            finally:
                self._running -= 1
        finally:
            self._slots.release()
