"""The asyncio HTTP front end for :class:`EncodeService`.

Deliberately tiny: stdlib ``asyncio.start_server`` streams, an HTTP/1.1
subset (``POST /encode``, ``GET /healthz``, ``GET /stats``), one JSON
body per request, ``Connection: close`` on every response.  No
framework — the repo's dependency budget is the standard library, and
the robustness work lives in :mod:`repro.server.service`, not in HTTP
plumbing.

Two things the transport layer *does* own:

* **Slow-client protection** — reading a request (header + body) is
  bounded by ``read_timeout``; a client that trickles bytes gets a 408
  and its connection closed, so it cannot pin a handler task forever.
* **Graceful shutdown** — :meth:`ServerApp.shutdown` stops accepting,
  lets in-flight handlers drain for ``drain_timeout`` seconds, cancels
  the stragglers, and hard-kills any still-live worker processes.  A
  SIGTERM mid-burst therefore leaves no orphaned spawn workers (the
  serve CLI test asserts exactly this by pid).
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import time
from typing import Dict, Optional, Set, Tuple

from repro.errors import ParseError, ReproError, error_to_dict
from repro.server.service import EncodeResponse, EncodeService

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


def _log_line(stream, fields: Dict) -> None:
    """One structured JSON log line per request (stderr by default)."""
    try:
        stream.write(json.dumps(fields, sort_keys=True,
                                default=str) + "\n")
        stream.flush()
    except (OSError, ValueError):  # closed stream on teardown
        pass


class ServerApp:
    """Owns the listening socket, connection handlers, and shutdown."""

    def __init__(self, service: EncodeService, *,
                 host: str = "127.0.0.1", port: int = 0,
                 read_timeout: float = 10.0,
                 drain_timeout: float = 5.0,
                 log_stream=None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.read_timeout = read_timeout
        self.drain_timeout = drain_timeout
        self.log_stream = log_stream if log_stream is not None else sys.stderr
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: Set[asyncio.Task] = set()
        self._shutdown = asyncio.Event()
        self.started = time.monotonic()

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def serve_until_shutdown(self) -> None:
        """Block until :meth:`shutdown` completes the drain."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        """Signal-handler-safe trigger: schedules the drain."""
        if not self._shutdown.is_set():
            asyncio.get_running_loop().create_task(self.shutdown())

    async def shutdown(self) -> Dict:
        """Stop accepting, drain handlers, kill workers.  Idempotent."""
        if self._shutdown.is_set():
            return {"drained": 0, "cancelled": 0, "workers_killed": 0}
        if self._server is not None:
            self._server.close()
            try:
                # on 3.12+ wait_closed also waits for live connections,
                # which would deadlock against the bounded drain below
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=self.drain_timeout)
            except (asyncio.TimeoutError, TimeoutError):
                pass  # stubborn handlers are drained/cancelled below
        pending = {t for t in self._handlers if not t.done()}
        drained = cancelled = 0
        if pending:
            done, still = await asyncio.wait(pending,
                                             timeout=self.drain_timeout)
            drained = len(done)
            for task in still:
                task.cancel()
                cancelled += 1
            if still:
                await asyncio.wait(still, timeout=1.0)
        workers_killed = self.service.shutdown()
        self._shutdown.set()
        _log_line(self.log_stream, {
            "event": "shutdown", "drained": drained,
            "cancelled": cancelled, "workers_killed": workers_killed,
        })
        return {"drained": drained, "cancelled": cancelled,
                "workers_killed": workers_killed}

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
            task.add_done_callback(self._handlers.discard)
        try:
            await self._serve_one(reader, writer)
        except asyncio.CancelledError:  # shutdown cancelled the drain
            raise
        except (ConnectionError, OSError):
            pass  # client went away; nothing to answer
        finally:
            try:
                writer.close()
                await asyncio.wait_for(writer.wait_closed(),
                                       timeout=self.drain_timeout)
            except (asyncio.TimeoutError, TimeoutError,
                    ConnectionError, OSError):
                pass

    async def _serve_one(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
        t0 = time.monotonic()
        try:
            method, path, body = await asyncio.wait_for(
                self._read_request(reader), timeout=self.read_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self.service.stats.slow_clients += 1
            await self._write_response(writer, EncodeResponse(
                408, {"status": "error", "error": {
                    "type": "ServiceError",
                    "message": "request read timed out"}},
                log={"outcome": "slow_client"}), "?", "?", t0)
            return
        except ReproError as exc:
            await self._write_response(writer, EncodeResponse(
                400, {"status": "error", "error": error_to_dict(exc)},
                log={"outcome": "invalid"}), "?", "?", t0)
            return

        response = await self._dispatch(method, path, body)
        await self._write_response(writer, response, method, path, t0)

    async def _read_request(
            self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[bytes]]:
        try:
            # nova-lint: disable=NV008 -- bounded at the only call site: _serve_one wraps _read_request in wait_for(read_timeout)
            header = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            raise ParseError("connection closed mid-header",
                             stage="parse") from exc
        except asyncio.LimitOverrunError as exc:
            raise ParseError("request header too large",
                             stage="parse") from exc
        if len(header) > _MAX_HEADER_BYTES:
            raise ParseError("request header too large", stage="parse")
        lines = header.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3:
            raise ParseError(f"malformed request line {lines[0]!r}",
                             stage="parse")
        method, path, _version = parts
        length = 0
        for line in lines[1:]:
            if line.lower().startswith("content-length:"):
                raw = line.split(":", 1)[1].strip()
                try:
                    length = int(raw)
                except ValueError:
                    raise ParseError(
                        f"bad Content-Length {raw!r}",
                        stage="parse") from None
        if length > _MAX_BODY_BYTES:
            raise ParseError("request body too large", stage="parse")
        # nova-lint: disable=NV008 -- bounded at the only call site: _serve_one wraps _read_request in wait_for(read_timeout)
        body = await reader.readexactly(length) if length else None
        return method, path, body

    async def _dispatch(self, method: str, path: str,
                        body: Optional[bytes]) -> EncodeResponse:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return self._plain_error(405, "use GET /healthz")
            return EncodeResponse(200, {
                "status": "ok",
                "uptime": round(time.monotonic() - self.started, 3),
            }, log={"outcome": "ok"})
        if path == "/stats":
            if method != "GET":
                return self._plain_error(405, "use GET /stats")
            return EncodeResponse(200, self.service.snapshot(),
                                  log={"outcome": "ok"})
        if path == "/encode":
            if method != "POST":
                return self._plain_error(405, "use POST /encode")
            try:
                payload = json.loads(body) if body else {}
            except json.JSONDecodeError as exc:
                self.service.stats.requests += 1
                self.service.stats.client_errors += 1
                return self._plain_error(
                    400, f"request body is not valid JSON: {exc}")
            try:
                return await self.service.handle_encode(payload)
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                # last resort: a bug (or injected respond-stage fault)
                # past the service's own error mapping still answers
                # with JSON instead of a dropped connection
                self.service.stats.server_errors += 1
                return EncodeResponse(
                    getattr(exc, "http_status", 500),
                    {"status": "error", "error": error_to_dict(exc)},
                    log={"outcome": "error"})
        return self._plain_error(404, f"no route {path!r}")

    def _plain_error(self, status: int, message: str) -> EncodeResponse:
        return EncodeResponse(status, {
            "status": "error",
            "error": {"type": "ServiceError", "message": message},
        }, log={"outcome": "invalid" if status < 500 else "error"})

    async def _write_response(self, writer: asyncio.StreamWriter,
                              response: EncodeResponse, method: str,
                              path: str, t0: float) -> None:
        payload = json.dumps(response.body, sort_keys=True).encode()
        head = [f"HTTP/1.1 {response.status} "
                f"{_REASONS.get(response.status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(payload)}",
                "Connection: close"]
        for name, value in response.headers.items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + payload)
        fields = dict(response.log)
        try:
            # the read side is bounded by read_timeout; this bounds the
            # write side — a peer that stops reading while our send
            # buffer is full must not hold the handler slot forever
            await asyncio.wait_for(writer.drain(),
                                   timeout=self.drain_timeout)
        except (asyncio.TimeoutError, TimeoutError):
            self.service.stats.slow_clients += 1
            writer.close()
            fields["outcome"] = "slow_client"
        fields.update(method=method, path=path, status=response.status,
                      elapsed=round(time.monotonic() - t0, 6))
        _log_line(self.log_stream, fields)


async def run_server(service: EncodeService, *, host: str, port: int,
                     read_timeout: float = 10.0,
                     drain_timeout: float = 5.0,
                     ready_stream=None, log_stream=None) -> int:
    """Boot the app, install signal handlers, serve until shutdown.

    Prints one ``{"event": "listening", ...}`` JSON line to
    *ready_stream* (default stdout) so supervisors — and the CI job —
    can discover the bound port when ``--port 0`` asked for an
    ephemeral one.  Returns the process exit code (0 on a clean drain).
    """
    import signal

    app = ServerApp(service, host=host, port=port,
                    read_timeout=read_timeout,
                    drain_timeout=drain_timeout, log_stream=log_stream)
    bound_host, bound_port = await app.start()
    stream = ready_stream if ready_stream is not None else sys.stdout
    _log_line(stream, {"event": "listening", "host": bound_host,
                       "port": bound_port, "pid": os.getpid()})
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.request_shutdown)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-Unix loop: rely on KeyboardInterrupt
    await app.serve_until_shutdown()
    return 0
