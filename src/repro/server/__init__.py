"""Encode-as-a-service: the asyncio front end over the NOVA pipeline.

The package splits the server into one module per robustness concern
(DESIGN §6.10):

``singleflight``  one computation per in-flight fingerprint
``admission``     bounded queue, prompt 429s, Retry-After model
``pool``          spawn workers with a hard wall-clock kill
``service``       the request core tying the three together
``stats``         the ``/stats`` counters
``app``           stdlib HTTP transport, slow-client guard, shutdown

Everything is standard library; ``nova serve`` (:mod:`repro.cli`) is
the entry point.
"""

from repro.server.admission import AdmissionController
from repro.server.app import ServerApp, run_server
from repro.server.pool import WorkerPool
from repro.server.service import EncodeResponse, EncodeService
from repro.server.singleflight import SingleFlight
from repro.server.stats import ServerStats

__all__ = [
    "AdmissionController",
    "EncodeResponse",
    "EncodeService",
    "ServerApp",
    "ServerStats",
    "SingleFlight",
    "WorkerPool",
    "run_server",
]
