"""Serving-layer counters surfaced by ``GET /stats``.

One :class:`ServerStats` instance lives on the
:class:`~repro.server.service.EncodeService` and is mutated from the
event loop only (single-threaded), so plain attribute increments are
race-free.  The snapshot is JSON-safe and additive with the substrate
counters of :mod:`repro.perf` — ``/stats`` reports both, so one scrape
shows cache behaviour, queue pressure, and pipeline work side by side.
"""

from __future__ import annotations

from typing import Dict

#: Counter attributes, all starting at zero.  Grouped by layer:
#: request outcomes, cache tiers, single-flight, admission, workers.
_COUNTERS = (
    # request outcomes (one per /encode request)
    "requests",            # /encode requests accepted for processing
    "ok",                  # clean 200s
    "degraded",            # 200s whose RunReport says a fallback fired
    "overloads",           # 429s (queue full or injected)
    "deadline_expired",    # 504s (hard deadline with no rescue result)
    "client_errors",       # 4xx other than 429 (bad KISS, bad options)
    "server_errors",       # 5xx other than 504
    "slow_clients",        # 408s (request read timed out)
    # cache tiers (cold-path probes, before any work is scheduled)
    "cache_memory_hits",
    "cache_disk_hits",
    "cache_misses",
    "shed",                # warm answers served while the queue was full
    # single-flight
    "leaders",             # computations started (unique fingerprints)
    "coalesced",           # requests attached to an in-flight leader
    "detached",            # waiters that disconnected before the result
    # admission + workers
    "queue_rejects",       # admissions refused (queue at limit)
    "worker_spawns",       # processes started
    "worker_kills",        # hard wall-clock kills
    "worker_crashes",      # died without reporting (not a kill)
    "ladder_retries",      # server-side rung retries after kill/crash
    "rescues",             # retries granted the emergency allowance
)


class ServerStats:
    """One bag of serving counters plus queue-wait aggregates."""

    __slots__ = _COUNTERS + ("queue_wait_total", "queue_wait_max",
                             "busy_seconds")

    def __init__(self) -> None:
        for name in _COUNTERS:
            setattr(self, name, 0)
        self.queue_wait_total = 0.0
        self.queue_wait_max = 0.0
        self.busy_seconds = 0.0

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_wait_total += seconds
        if seconds > self.queue_wait_max:
            self.queue_wait_max = seconds

    def snapshot(self) -> Dict:
        """JSON-safe rendering for ``/stats``."""
        out: Dict = {name: getattr(self, name) for name in _COUNTERS}
        out["queue_wait_total"] = round(self.queue_wait_total, 6)
        out["queue_wait_max"] = round(self.queue_wait_max, 6)
        out["busy_seconds"] = round(self.busy_seconds, 6)
        return out
