"""The service's spawn-worker pool: isolated encodes with a hard kill.

One cold request = one spawned process running
:func:`repro.runner.worker.child_main` — exactly the PR 3 batch-runner
entry point, reused unchanged, so every property that module guarantees
(JSON-only pipe transport, exception-proof reporting, orphan-safe
sends) holds here too.  What the pool adds is the *async* shape: the
blocking spawn/poll/kill loop runs in a thread via
``asyncio.to_thread``, so the event loop keeps serving warm traffic
while workers grind.

The hard wall-clock kill sits **above** the cooperative
:class:`~repro.perf.budget.Budget` the request's deadline maps onto
(DESIGN §6.6): the budget degrades a healthy pipeline gracefully inside
the worker; the kill bounds the unhealthy one — a stuck C-level loop,
an allocation storm — that never reaches a budget check.  SIGKILL, not
SIGTERM: a wedged worker may not run Python again.

Shutdown is synchronous and total: :meth:`shutdown` refuses new work,
SIGKILLs every live worker and joins it, so a served SIGTERM can
guarantee "no orphaned spawn workers" to its supervisor.
"""

from __future__ import annotations

import asyncio
from multiprocessing import get_context
import threading
import time
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.runner.worker import child_main

#: ``outcome["killed"]`` markers the pool itself produces.
KILLED_TIMEOUT = "timeout"
KILLED_SHUTDOWN = "shutdown"

#: How often the polling thread re-checks the shutdown flag (seconds).
_POLL_INTERVAL = 0.1


class WorkerPool:
    """Spawn-context workers, registered so shutdown can kill them all."""

    def __init__(self) -> None:
        self._ctx = get_context("spawn")
        self._live: Dict[int, object] = {}  # pid -> Process
        self._lock = threading.Lock()
        self._closing = threading.Event()

    # ------------------------------------------------------------------
    @property
    def closing(self) -> bool:
        return self._closing.is_set()

    def live_pids(self) -> List[int]:
        """PIDs of currently running workers (for /stats and tests)."""
        with self._lock:
            return sorted(self._live)

    # ------------------------------------------------------------------
    async def run(self, spec: Dict,
                  hard_timeout: Optional[float]) -> Dict:
        """Run one worker attempt off-loop; returns the outcome dict.

        The outcome is either the worker's own report (``status`` of
        ``ok``/``degraded``/``error``) or a parent-side classification:
        ``{"status": "killed", "killed": "timeout"}`` for a hard kill,
        ``{"status": "crashed", "exitcode": N}`` for a death without a
        report.  Raises :class:`ServiceError` only when the pool is
        already shutting down.
        """
        return await asyncio.to_thread(self._run_blocking, spec,
                                       hard_timeout)

    def _run_blocking(self, spec: Dict,
                      hard_timeout: Optional[float]) -> Dict:
        if self._closing.is_set():
            raise ServiceError("worker pool is shutting down",
                               stage="dispatch",
                               machine=spec.get("machine"))
        recv, send = self._ctx.Pipe(duplex=False)
        proc = self._ctx.Process(target=child_main, args=(spec, send),
                                 daemon=True)
        proc.start()
        send.close()  # keep only the read end: EOF detection is reliable
        with self._lock:
            self._live[proc.pid] = proc
        deadline = (None if hard_timeout is None
                    else time.monotonic() + hard_timeout)
        try:
            return self._watch(proc, recv, deadline)
        finally:
            with self._lock:
                self._live.pop(proc.pid, None)
            recv.close()

    def _watch(self, proc, recv, deadline: Optional[float]) -> Dict:
        """Poll until report, EOF, hard deadline, or pool shutdown."""
        while True:
            if self._closing.is_set():
                proc.kill()
                proc.join()
                return {"status": "killed", "killed": KILLED_SHUTDOWN,
                        "exitcode": proc.exitcode}
            timeout = _POLL_INTERVAL
            if deadline is not None:
                timeout = min(timeout,
                              max(0.0, deadline - time.monotonic()))
            if recv.poll(timeout):
                try:
                    outcome = recv.recv()
                except (EOFError, OSError):
                    proc.join()
                    return {"status": "crashed",
                            "exitcode": proc.exitcode}
                proc.join()
                return outcome
            if deadline is not None and time.monotonic() > deadline:
                proc.kill()
                proc.join()
                return {"status": "killed", "killed": KILLED_TIMEOUT,
                        "exitcode": proc.exitcode}

    # ------------------------------------------------------------------
    def shutdown(self) -> int:
        """Refuse new work, SIGKILL and join every live worker.

        Returns how many workers were killed.  Idempotent; safe to call
        from any thread (and from a signal-driven shutdown path).
        """
        self._closing.set()
        with self._lock:
            procs = list(self._live.values())
        killed = 0
        for proc in procs:
            if proc.is_alive():
                proc.kill()
                killed += 1
            proc.join()
        return killed
