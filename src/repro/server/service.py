"""The encode service: fingerprint, coalesce, admit, dispatch, degrade.

One :class:`EncodeService` owns the three robustness layers the server
is built around, applied in a fixed order per request:

1. **Warm path / load shed.**  Storable requests are fingerprinted
   (PR 4's content address) and probed against the two-tier cache
   *before* admission control, so cache-warm traffic is answered even
   while the cold path is saturated — overload never takes away
   answers the host already has.
2. **Single-flight.**  A cold fingerprint already being computed is
   attached to, not recomputed: N identical concurrent requests cost
   one worker spawn and produce N identical responses.  Waiter
   disconnects detach without killing the shared work
   (:mod:`repro.server.singleflight`).
3. **Admission + degradation.**  Cold leaders pass through the bounded
   queue (:mod:`repro.server.admission`; full queue -> 429), then run
   in a spawned worker (:mod:`repro.server.pool`) under two deadlines:
   the request timeout maps onto the cooperative
   :class:`~repro.perf.budget.Budget` *inside* the worker — where
   :func:`~repro.encoding.nova.encode_fsm` already walks the
   iexact -> ihybrid -> igreedy -> onehot ladder and reports the
   degradation in its :class:`~repro.encoding.nova.RunReport` — and a
   hard wall-clock kill above it.  If the worker is killed or crashes,
   the *server* walks the same ladder, granting a short rescue
   allowance when the deadline is already gone, so clients get a
   degraded-but-valid encoding with provenance instead of an error
   whenever any rung can still deliver one.

The cooperative timeout shipped to the worker is the *request's*
timeout, untouched by queue wait: the timeout participates in the
cache fingerprint, so shrinking it per-attempt would fragment the
cache key space.  The hard kill (request deadline + grace) is what
actually enforces wall-clock truth.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import cache as cache_mod
from repro.encoding.nova import fallback_chain
from repro.encoding.options import EncodeOptions
from repro.errors import (
    BudgetExhausted,
    ConstraintError,
    DeadlineExceeded,
    EncodingInfeasible,
    ParseError,
    ReproError,
    ServiceError,
    error_from_dict,
    error_to_dict,
)
from repro.fsm.machine import FSM
from repro.server.admission import AdmissionController
from repro.server.pool import WorkerPool
from repro.server.singleflight import SingleFlight
from repro.server.stats import ServerStats
from repro.testing import faults


@dataclass
class EncodeResponse:
    """What one request produced: HTTP status, JSON body, log fields."""

    status: int
    body: Dict[str, Any]
    headers: Dict[str, str] = field(default_factory=dict)
    log: Dict[str, Any] = field(default_factory=dict)


def _status_for(exc: BaseException) -> int:
    """Map a taxonomy error to its HTTP transport status."""
    if isinstance(exc, ServiceError):
        return exc.http_status
    if isinstance(exc, (ParseError, ConstraintError)):
        return 400
    if isinstance(exc, EncodingInfeasible):
        return 422
    if isinstance(exc, BudgetExhausted):
        return 504
    return 500


class EncodeService:
    """The request-handling core, HTTP-agnostic (the app layer wraps it).

    Parameters
    ----------
    workers:
        Concurrent cold computations (spawned worker processes).
    queue_limit:
        Cold leaders allowed to wait for a worker slot; the next one
        gets a 429.
    default_timeout / max_timeout:
        Per-request wall-clock deadline applied when the client sends
        none / the cap a client-sent deadline is clamped to.
    kill_grace:
        Seconds past the cooperative deadline before the hard SIGKILL.
    rescue_timeout:
        Emergency allowance granted to degradation rungs after a
        kill/crash ate the whole deadline (graceful degradation beats
        an error as long as any rung can answer).
    worker_faults:
        Serialized :class:`repro.testing.faults.Fault` specs shipped
        into every worker (test/bench harness hook — this is how the
        suite plants hangs and crashes inside the cold path).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_limit: int = 8,
        default_timeout: Optional[float] = None,
        max_timeout: Optional[float] = None,
        kill_grace: float = 2.0,
        rescue_timeout: float = 2.0,
        cache_policy: str = "auto",
        worker_faults: Optional[List[Dict]] = None,
    ) -> None:
        if kill_grace < 0 or rescue_timeout < 0:
            raise ServiceError("kill_grace and rescue_timeout must be >= 0")
        # validate the cache environment eagerly: a typo'd NOVA_CACHE
        # must fail the boot, not the first request
        cache_mod.resolve_policy(cache_policy)
        cache_mod.check_environment()
        self.default_timeout = default_timeout
        self.max_timeout = max_timeout
        self.kill_grace = kill_grace
        self.rescue_timeout = rescue_timeout
        self.cache_policy = cache_policy
        self.worker_faults = list(worker_faults or [])
        self.stats = ServerStats()
        self.pool = WorkerPool()
        self.admission = AdmissionController(workers, queue_limit,
                                             stats=self.stats)
        self.flight = SingleFlight()

    # ------------------------------------------------------------------
    # request parsing
    # ------------------------------------------------------------------
    def _parse_request(
            self, payload: Any) -> Tuple[FSM, Optional[str], EncodeOptions]:
        if not isinstance(payload, dict):
            raise ParseError("request body must be a JSON object",
                             stage="parse")
        kiss_text: Optional[str] = payload.get("kiss")
        bench = payload.get("machine")
        if kiss_text is not None:
            from repro.fsm.kiss import parse_kiss

            if not isinstance(kiss_text, str):
                raise ParseError("'kiss' must be KISS2 source text",
                                 stage="parse")
            fsm = parse_kiss(kiss_text,
                             name=str(payload.get("name") or "request"))
        elif bench:
            from repro.fsm.benchmarks import benchmark, benchmark_names

            if bench not in benchmark_names("all"):
                raise ParseError(
                    f"unknown benchmark machine {bench!r}", stage="parse")
            fsm = benchmark(bench)
        else:
            raise ParseError(
                "request needs 'kiss' (inline KISS2 text) or 'machine' "
                "(builtin benchmark name)", stage="parse")

        raw = dict(payload.get("options") or {})
        for short in ("algorithm", "timeout", "seed"):
            if short in payload and short not in raw:
                raw[short] = payload[short]
        raw.setdefault("cache", self.cache_policy)
        if raw.get("timeout") is None:
            raw["timeout"] = self.default_timeout
        if raw["timeout"] is None:
            raw.pop("timeout")
        elif self.max_timeout is not None:
            raw["timeout"] = min(float(raw["timeout"]), self.max_timeout)
        try:
            opts = EncodeOptions.from_dict(raw)
        except ReproError:
            raise
        except (TypeError, ValueError) as exc:
            raise ConstraintError(f"invalid encode options: {exc}",
                                  stage="parse",
                                  machine=fsm.name) from exc
        return fsm, kiss_text, opts

    # ------------------------------------------------------------------
    # warm path
    # ------------------------------------------------------------------
    def _probe_cache(self, fsm: FSM, opts: EncodeOptions,
                     fp: str) -> Tuple[Optional[Dict], Optional[str]]:
        """(record, tier) from the cache, or (None, None) on a miss.

        Probes the tiers directly (memory, then disk with promotion) so
        the response can say *which* tier answered.
        """
        cache = cache_mod.get_cache(opts.cache)
        if cache is None:
            return None, None
        payload = cache.memory.get(fp)
        tier = "memory" if payload is not None else None
        if payload is None and cache.disk is not None:
            payload, _nbytes = cache.disk.get(fp)
            if payload is not None:
                tier = "disk"
                cache.memory.put(fp, payload)
        if payload is None:
            return None, None
        try:
            result = cache_mod.decode_result(fsm, payload)
        except cache_mod.CacheDecodeError:
            cache.invalidate(fp)
            return None, None
        if result.report is not None:
            result.report.cache_hit = True
        return result.to_record(), tier

    # ------------------------------------------------------------------
    # cold path: admission -> worker ladder
    # ------------------------------------------------------------------
    async def _compute_cold(self, fsm: FSM, kiss_text: Optional[str],
                            opts: EncodeOptions, fp: Optional[str],
                            deadline: Optional[float]) -> Dict:
        """The shared (single-flight) computation for one fingerprint."""
        faults.trip("dispatch", machine=fsm.name,
                    algorithm=opts.algorithm)
        t0 = time.monotonic()
        async with self.admission.admit(deadline,
                                        machine=fsm.name) as queue_wait:
            out = await self._run_ladder(fsm, kiss_text, opts, deadline)
        self.admission.observe_service_time(time.monotonic() - t0)
        self.stats.busy_seconds += time.monotonic() - t0
        out["queue_wait"] = round(queue_wait, 6)
        return out

    def _spec(self, fsm: FSM, kiss_text: Optional[str],
              opts: EncodeOptions, rung: str,
              timeout: Optional[float]) -> Dict:
        options = opts.to_dict()
        options.pop("algorithm")
        options["timeout"] = timeout
        if timeout is None:
            options.pop("timeout")
        return {
            "task": f"{rung}:{fsm.name}",
            "machine": fsm.name,
            "kiss": kiss_text,
            "algorithm": rung,
            "kind": "encode",
            "options": options,
            "want_payload": opts.storable,
            "faults": list(self.worker_faults),
        }

    def _warm_own_cache(self, fsm: FSM, opts: EncodeOptions, rung: str,
                        cooperative: Optional[float],
                        payload: Optional[Dict]) -> None:
        """Put a worker's result payload into this process's memory tier.

        The worker already filled the shared *disk* tier (when the
        policy has one), but its in-process LRU died with it; without
        this, repeat requests under a memory-only policy would never go
        warm.  The key is recomputed for the options the attempt
        actually ran with — identical to the request fingerprint on the
        first rung, distinct for retry rungs (their algorithm/timeout
        changed, which is correct: they are different pure results).
        """
        if payload is None:
            return
        cache = cache_mod.get_cache(opts.cache)
        if cache is None:
            return
        used = opts.replace(algorithm=rung, timeout=cooperative)
        if not used.storable:
            return
        cache.memory.put(cache_mod.fingerprint(fsm, used), payload)

    async def _run_ladder(self, fsm: FSM, kiss_text: Optional[str],
                          opts: EncodeOptions,
                          deadline: Optional[float]) -> Dict:
        """Spawn workers down the degradation ladder until one answers.

        A healthy worker degrades *internally* (the cooperative budget
        drives ``encode_fsm``'s own chain), so one spawn usually
        suffices; the server-side walk only advances past workers that
        were hard-killed or crashed.
        """
        rungs = (fallback_chain(opts.algorithm) if opts.fallback
                 else (opts.algorithm,))
        attempts: List[Dict] = []
        for i, rung in enumerate(rungs):
            remaining = (None if deadline is None
                         else deadline - time.monotonic())
            cooperative = opts.timeout
            if remaining is not None and remaining <= 0:
                if i == 0:
                    raise DeadlineExceeded(
                        "deadline expired before the first attempt",
                        deadline=opts.timeout, stage="dispatch",
                        machine=fsm.name)
                # the deadline is gone but a weaker rung may still
                # answer almost instantly: grant the rescue allowance
                remaining = self.rescue_timeout
                cooperative = self.rescue_timeout
                self.stats.rescues += 1
            if i > 0:
                # retry rungs run under what's left, not the original
                # allowance (their fingerprints differ from the request
                # anyway — the algorithm changed)
                cooperative = remaining
                self.stats.ladder_retries += 1
            hard = (None if remaining is None
                    else remaining + self.kill_grace)
            spec = self._spec(fsm, kiss_text, opts, rung, cooperative)
            self.stats.worker_spawns += 1
            outcome = await self.pool.run(spec, hard)
            status = outcome.get("status")
            attempts.append({
                "algorithm": rung,
                "status": status,
                "killed": outcome.get("killed"),
                "exitcode": outcome.get("exitcode"),
                "elapsed": outcome.get("elapsed"),
            })
            if status in ("ok", "degraded"):
                self._warm_own_cache(fsm, opts, rung, cooperative,
                                     outcome.get("payload"))
                return {"status": status,
                        "record": outcome.get("record"),
                        "perf": outcome.get("perf") or {},
                        "attempts": attempts}
            if status == "error":
                rebuilt = error_from_dict(outcome["error"])
                raise rebuilt
            if status == "killed":
                self.stats.worker_kills += 1
                if outcome.get("killed") == "shutdown":
                    raise ServiceError("server shutting down",
                                       stage="dispatch", machine=fsm.name)
            elif status == "crashed":
                self.stats.worker_crashes += 1
        path = " -> ".join(a["algorithm"] for a in attempts)
        if any(a.get("killed") == "timeout" for a in attempts):
            raise DeadlineExceeded(
                f"every degradation rung was killed or crashed ({path})",
                deadline=opts.timeout, stage="dispatch", machine=fsm.name)
        raise ServiceError(
            f"every degradation rung crashed ({path})",
            stage="dispatch", machine=fsm.name)

    # ------------------------------------------------------------------
    # the request entry point
    # ------------------------------------------------------------------
    async def handle_encode(self, payload: Any) -> EncodeResponse:
        t0 = time.monotonic()
        self.stats.requests += 1
        log: Dict[str, Any] = {"fingerprint": None, "cache": None,
                               "coalesced": False, "queue_wait": None,
                               "fallback_stage": None}
        try:
            fsm, kiss_text, opts = self._parse_request(payload)
        except ReproError as exc:
            return self._error_response(exc, t0, log)
        log["machine"] = fsm.name
        log["algorithm"] = opts.algorithm
        deadline = (None if opts.timeout is None else t0 + opts.timeout)
        fp = (cache_mod.fingerprint(fsm, opts) if opts.storable else None)
        log["fingerprint"] = fp

        # 1. warm path (and load shed: runs even while saturated)
        if fp is not None:
            record, tier = self._probe_cache(fsm, opts, fp)
            if record is not None:
                if tier == "memory":
                    self.stats.cache_memory_hits += 1
                else:
                    self.stats.cache_disk_hits += 1
                if self.admission.saturated:
                    self.stats.shed += 1
                return self._result_response(record, t0, log, cache=tier)
            self.stats.cache_misses += 1

        # 2./3. cold path: coalesce, admit, dispatch
        coalesced = False
        try:
            if fp is None:
                computed = await self._compute_cold(fsm, kiss_text, opts,
                                                    fp, deadline)
            else:
                call = self.flight.lookup(fp)
                if call is None:
                    call = self.flight.launch(
                        fp, lambda: self._compute_cold(
                            fsm, kiss_text, opts, fp, deadline))
                    self.stats.leaders += 1
                else:
                    self.stats.coalesced += 1
                    coalesced = True
                waiter = self.flight.wait(call)
                if deadline is not None:
                    try:
                        computed = await asyncio.wait_for(
                            waiter, timeout=max(0.0,
                                                deadline - time.monotonic())
                            + self.kill_grace + 1.0)
                    except (asyncio.TimeoutError, TimeoutError):
                        self.stats.detached += 1
                        raise DeadlineExceeded(
                            "deadline expired waiting for the coalesced "
                            "computation", deadline=opts.timeout,
                            stage="dispatch", machine=fsm.name) from None
                else:
                    computed = await waiter
        except ReproError as exc:
            return self._error_response(exc, t0, log, machine=fsm.name)
        log["coalesced"] = coalesced
        log["queue_wait"] = computed.get("queue_wait")
        return self._result_response(
            computed["record"], t0, log, cache=None, coalesced=coalesced,
            attempts=computed.get("attempts"),
            queue_wait=computed.get("queue_wait"))

    # ------------------------------------------------------------------
    # response assembly
    # ------------------------------------------------------------------
    def _result_response(self, record: Dict, t0: float, log: Dict,
                         cache: Optional[str], coalesced: bool = False,
                         attempts: Optional[List[Dict]] = None,
                         queue_wait: Optional[float] = None
                         ) -> EncodeResponse:
        report = record.get("report") or {}
        degraded = bool(report.get("degraded"))
        requested = report.get("requested_algorithm")
        final = record.get("algorithm")
        if degraded or (requested and final and requested != final):
            log["fallback_stage"] = final
        outcome = "degraded" if degraded else "ok"
        log["outcome"] = outcome
        log["cache"] = cache
        if degraded:
            self.stats.degraded += 1
        else:
            self.stats.ok += 1
        faults.trip("respond", machine=str(log.get("machine")),
                    outcome=outcome)
        body = {
            "status": outcome,
            "record": record,
            "cache": cache,
            "coalesced": coalesced,
            "fingerprint": log.get("fingerprint"),
            "elapsed": round(time.monotonic() - t0, 6),
        }
        if attempts:
            body["attempts"] = attempts
        if queue_wait is not None:
            body["queue_wait"] = queue_wait
        return EncodeResponse(200, body, log=log)

    def _error_response(self, exc: ReproError, t0: float, log: Dict,
                        machine: Optional[str] = None) -> EncodeResponse:
        status = _status_for(exc)
        headers: Dict[str, str] = {}
        if status == 429:
            self.stats.overloads += 1
            retry = getattr(exc, "retry_after", None) or 1.0
            headers["Retry-After"] = str(int(max(1.0, retry) + 0.5))
            log["outcome"] = "overload"
        elif status == 504:
            self.stats.deadline_expired += 1
            log["outcome"] = "deadline"
        elif 400 <= status < 500:
            self.stats.client_errors += 1
            log["outcome"] = "invalid"
        else:
            self.stats.server_errors += 1
            log["outcome"] = "error"
        body = {
            "status": "error",
            "error": error_to_dict(exc),
            "elapsed": round(time.monotonic() - t0, 6),
        }
        if "Retry-After" in headers:
            body["retry_after"] = float(headers["Retry-After"])
        return EncodeResponse(status, body, headers=headers, log=log)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """The ``/stats`` payload: serving counters + live gauges."""
        out = self.stats.snapshot()
        out["in_flight"] = len(self.flight)
        out["queued"] = self.admission.queued
        out["running"] = self.admission.running
        out["saturated"] = self.admission.saturated
        out["worker_pids"] = self.pool.live_pids()
        out["retry_after_estimate"] = round(self.admission.retry_after(), 3)
        return out

    def shutdown(self) -> int:
        """Kill the cold path (workers); returns workers killed."""
        return self.pool.shutdown()
